package dataset

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"haralick4d/internal/resilience"
)

// TestHTTPRetryAfterHonored is the regression test for Retry-After
// handling: a server that sheds the first request with 503 + Retry-After
// must see the client come back after the advertised wait, not after the
// 10ms linear backoff.
func TestHTTPRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	var times [2]time.Time
	body := []byte("retry-after payload")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			times[n-1] = time.Now()
		}
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write(body)
	}))
	defer srv.Close()

	be, err := NewHTTPBackend(srv.URL, srv.Client(), 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := be.ReadFile(context.Background(), "dataset.json")
	if err != nil {
		t.Fatalf("ReadFile through the 503: %v", err)
	}
	if string(data) != string(body) {
		t.Fatalf("body = %q, want %q", data, body)
	}
	if gap := times[1].Sub(times[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry came %v after the 503; Retry-After: 1 not honored", gap)
	}
}

// TestHTTPRetryAfterCappedByDeadline: a Retry-After far beyond the context
// deadline must not strand the caller sleeping — the attempt aborts at the
// deadline instead.
func TestHTTPRetryAfterCappedByDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	be, err := NewHTTPBackend(srv.URL, srv.Client(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = be.ReadFile(ctx, "dataset.json")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("request took %v; Retry-After was not capped at the deadline", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestHTTP429Retried: 429 responses are transient — the request must
// succeed once the server stops shedding.
func TestHTTP429Retried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	be, err := NewHTTPBackend(srv.URL, srv.Client(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.ReadFile(context.Background(), "dataset.json"); err != nil {
		t.Fatalf("ReadFile through a 429: %v", err)
	}
}

// TestHTTPBreakerFastFail: once consecutive failures trip the breaker,
// requests stop reaching the server and fail immediately with
// ErrBackendUnavailable wrapping resilience.ErrOpen.
func TestHTTPBreakerFastFail(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	set := (&resilience.Policy{
		Breaker: &resilience.BreakerConfig{ConsecFails: 3, OpenFor: time.Hour},
	}).NewSet()
	be, err := NewHTTPBackend(srv.URL, srv.Client(), 1)
	if err != nil {
		t.Fatal(err)
	}
	be.SetResilience(set)

	for i := 0; i < 3; i++ {
		if _, err := be.ReadFile(context.Background(), "dataset.json"); !errors.Is(err, ErrBackendUnavailable) {
			t.Fatalf("request %d: err = %v, want ErrBackendUnavailable", i, err)
		}
	}
	before := calls.Load()
	_, err = be.ReadFile(context.Background(), "dataset.json")
	if !errors.Is(err, ErrBackendUnavailable) || !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want ErrBackendUnavailable wrapping ErrOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker let a request through")
	}
	st := be.Stats()
	if st.BreakerState != resilience.StateOpen || st.BreakerTrips != 1 {
		t.Fatalf("stats = state %q trips %d, want open/1", st.BreakerState, st.BreakerTrips)
	}
}

// TestHTTPBudgetBoundsRetries: with the shared budget empty, the retry loop
// abandons immediately instead of burning its full attempt count.
func TestHTTPBudgetBoundsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	set := (&resilience.Policy{
		Budget: &resilience.BudgetConfig{Tokens: 2, Ratio: 0.1},
	}).NewSet()
	be, err := NewHTTPBackend(srv.URL, srv.Client(), 10)
	if err != nil {
		t.Fatal(err)
	}
	be.SetResilience(set)

	_, err = be.ReadFile(context.Background(), "dataset.json")
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("err = %v, want ErrBackendUnavailable", err)
	}
	// First attempt is free; the 2-token budget funds exactly 2 retries.
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 free + 2 budgeted)", got)
	}
	if !errors.Is(err, resilience.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted in chain", err)
	}
	st := be.Stats()
	if st.RetryBudgetSpent != 2 || st.RetryBudgetDenied != 1 {
		t.Fatalf("budget spent=%d denied=%d, want 2/1", st.RetryBudgetSpent, st.RetryBudgetDenied)
	}
}

// TestHTTPHedgedRead: a first request that hangs past the hedge threshold
// is raced by a second; the hedge's response answers the read and the
// counters record the win.
func TestHTTPHedgedRead(t *testing.T) {
	payload := []byte("0123456789abcdef")
	var calls atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
			return
		}
		if calls.Add(1) == 1 {
			// First GET stalls until the test ends.
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		http.ServeContent(w, r, "slice", time.Time{}, bytes.NewReader(payload))
	}))
	defer srv.Close()
	defer close(release)

	set := (&resilience.Policy{HedgeAfter: 20 * time.Millisecond}).NewSet()
	be, err := NewHTTPBackend(srv.URL, srv.Client(), 1)
	if err != nil {
		t.Fatal(err)
	}
	be.SetResilience(set)

	obj, err := be.Open(context.Background(), "slice.raw")
	if err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 8)
	n, err := obj.ReadAt(context.Background(), p, 4)
	if err != nil || n != 8 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if string(p) != string(payload[4:12]) {
		t.Fatalf("read %q, want %q", p, payload[4:12])
	}
	st := be.Stats()
	if st.HedgedReads != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedged=%d wins=%d, want 1/1", st.HedgedReads, st.HedgeWins)
	}
	// Only the winning attempt's I/O may reach the backend report: one
	// read of 8 bytes, no matter how the race resolved.
	if st.Reads != 1 || st.ReadBytes != 8 {
		t.Fatalf("reads=%d bytes=%d after hedged read, want 1/8 (winner only)", st.Reads, st.ReadBytes)
	}
}

// TestServeStaleConvertsUnavailable: with ServeStale on, an unreachable
// backend degrades positioned reads (skippable) instead of aborting the
// run, while header reads stay fatal.
func TestServeStaleConvertsUnavailable(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	be, err := NewBackend(srv.URL, &URLOptions{HTTPAttempts: 1, ServeStale: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = be.Open(context.Background(), "node000/slice.raw")
	if !errors.Is(err, ErrDegradedData) {
		t.Fatalf("Open err = %v, want ErrDegradedData", err)
	}
	if errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("Open err = %v; serve-stale must strip ErrBackendUnavailable so the slice is skippable", err)
	}
	// Metadata reads must not degrade: no header, no dataset.
	_, err = be.ReadFile(context.Background(), "dataset.json")
	if !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("ReadFile err = %v, want ErrBackendUnavailable (fatal)", err)
	}
	if got := be.Stats().StaleReads; got != 1 {
		t.Fatalf("stale reads = %d, want 1", got)
	}
}

package autotune

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the admission semaphore's behavior when Resize races live
// traffic — the situation the daemon's resource governor creates every time
// a job starts or finishes and every running job's share is re-cut in place.

// TestTokensShrinkBelowInFlight pins the shrink semantics when the cut goes
// below what is already held: nothing is revoked, new admissions stop
// entirely, and they resume only once the holders drain below the new limit.
func TestTokensShrinkBelowInFlight(t *testing.T) {
	tk := NewTokens(8, 1, 16)
	for i := 0; i < 8; i++ {
		if !tk.Acquire(nil) {
			t.Fatal("acquire within the limit blocked")
		}
	}
	if n := tk.Resize(2); n != 2 {
		t.Fatalf("Resize(2) = %d", n)
	}
	admitted := make(chan bool, 1)
	go func() { admitted <- tk.Acquire(nil) }()
	mustBlock := func(when string) {
		t.Helper()
		select {
		case <-admitted:
			t.Fatalf("admission while at or over the shrunken limit (%s)", when)
		case <-time.After(20 * time.Millisecond):
		}
	}
	mustBlock("8 held, limit 2")
	for i := 0; i < 6; i++ { // drain to exactly the new limit
		tk.Release()
	}
	mustBlock("2 held, limit 2")
	tk.Release() // 1 held < limit 2: the waiter gets the freed token
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("Acquire returned false with no stop close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("draining below the shrunken limit did not admit the waiter")
	}
	tk.Release()
	tk.Release()
}

// TestTokensGrowWakesAllBlocked parks several acquirers on a full semaphore
// and grows it: every newly minted token must be handed to a waiter, not
// just the first one the broadcast happens to wake.
func TestTokensGrowWakesAllBlocked(t *testing.T) {
	tk := NewTokens(1, 1, 16)
	if !tk.Acquire(nil) {
		t.Fatal("first acquire blocked")
	}
	const waiters = 5
	admitted := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		go func() { admitted <- tk.Acquire(nil) }()
	}
	time.Sleep(20 * time.Millisecond) // park them on the cond
	tk.Resize(1 + waiters)            // one held + one token per waiter
	for i := 0; i < waiters; i++ {
		select {
		case ok := <-admitted:
			if !ok {
				t.Fatal("woken Acquire returned false")
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d still blocked after grow", i)
		}
	}
	for i := 0; i < 1+waiters; i++ {
		tk.Release()
	}
}

// TestTokensResizeDuringDrain closes stop in the middle of a resize storm:
// every blocked acquirer must abort with false — none may stay wedged on
// the cond — and every token must come home. (The workers also poll stop
// after each release: the fast Acquire path deliberately admits without
// checking stop, so a worker that keeps winning tokens would otherwise
// never observe the drain.)
func TestTokensResizeDuringDrain(t *testing.T) {
	tk := NewTokens(2, 1, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk.Acquire(stop) {
				time.Sleep(time.Millisecond)
				tk.Release()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	resizerDone := make(chan struct{})
	go func() {
		defer close(resizerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tk.Resize(1 + i%8)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("an acquirer stayed wedged after stop closed mid-resize")
	}
	<-resizerDone
	tk.mu.Lock()
	out := tk.out
	tk.mu.Unlock()
	if out != 0 {
		t.Fatalf("%d tokens leaked through the drain", out)
	}
}

// TestTokensConcurrentResizeStress whipsaws the limit across its whole
// range under 2x oversubscribed traffic and checks the invariant no
// interleaving may break: concurrent holders never exceed the semaphore's
// upper bound, and it is at rest when the traffic stops.
func TestTokensConcurrentResizeStress(t *testing.T) {
	const hi = 8
	tk := NewTokens(hi, 1, hi)
	stop := make(chan struct{})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2*hi; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk.Acquire(stop) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				cur.Add(-1)
				tk.Release()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		tk.Resize(1 + i%hi)
	}
	close(stop)
	wg.Wait()
	if p := peak.Load(); p > hi {
		t.Fatalf("observed %d concurrent holders, upper bound is %d", p, hi)
	}
	tk.mu.Lock()
	out := tk.out
	tk.mu.Unlock()
	if out != 0 {
		t.Fatalf("%d tokens leaked through the stress run", out)
	}
}

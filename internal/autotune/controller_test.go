package autotune

import (
	"reflect"
	"testing"
	"time"

	"haralick4d/internal/metrics"
)

// snap builds a minimal snapshot: wall clock, cumulative messages out, and
// an optional read-wait span total.
func snap(wallNS, msgs, readWaitNS int64) *metrics.Snapshot {
	return &metrics.Snapshot{
		WallNS: wallNS,
		Filters: []metrics.FilterSnap{{
			Name:   "HMP",
			Copies: []metrics.CopySnap{{Node: 0, MsgsOut: msgs}},
			Spans:  map[string]int64{metrics.SpanReadWait: readWaitNS},
		}},
	}
}

// trace replays a fixed snapshot sequence through a fresh controller with
// both knobs enabled and returns the decision log.
func trace(t *testing.T, seed int64, snaps []*metrics.Snapshot) []metrics.TuningDecision {
	t.Helper()
	c := New(Config{Seed: seed})
	g := c.EnableReadAhead(4, 1, 32)
	tk := c.EnableAdmission(4, 1, 4)
	if g == nil || tk == nil {
		t.Fatal("Enable* returned nil")
	}
	for _, s := range snaps {
		c.Step(s)
	}
	return c.Decisions()
}

// TestDeterministicDecisions is the fixed-seed contract: the same snapshot
// trace with the same seed reproduces the identical decision log, and a
// different seed is allowed to (and here does not need to) differ.
func TestDeterministicDecisions(t *testing.T) {
	mk := func() []*metrics.Snapshot {
		var s []*metrics.Snapshot
		// A noisy but fixed trace: rate wobbles around a slow climb with a
		// read-wait phase in the middle.
		msgs, wall := int64(0), int64(0)
		deltas := []int64{0, 40, 44, 39, 60, 61, 30, 33, 70, 72, 71, 35, 80, 82, 84, 90}
		for i, d := range deltas {
			wall += int64(100 * time.Millisecond)
			msgs += d
			var rw int64
			if i >= 4 && i <= 7 {
				rw = wall / 10 // read-wait share 10% > the 5% hint threshold
			}
			s = append(s, snap(wall, msgs, rw))
		}
		return s
	}
	a := trace(t, 7, mk())
	b := trace(t, 7, mk())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, same trace, different decisions:\n%v\n%v", a, b)
	}
	if len(a) < 2 {
		t.Fatalf("trace produced %d decisions, want at least the two init records", len(a))
	}
	for _, d := range a[:2] {
		if d.Trigger != "init" || d.AtNS != 0 {
			t.Fatalf("decision log must start with init records, got %+v", d)
		}
	}
}

// TestWarmupSkipped checks ticks with no output (and clock-stalled ticks)
// turn no knobs.
func TestWarmupSkipped(t *testing.T) {
	c := New(Config{})
	c.EnableReadAhead(4, 1, 32)
	for i := 0; i < 5; i++ {
		c.Step(snap(int64(i+1)*1e8, 0, 0))
	}
	c.Step(snap(1e8, 50, 0)) // wall went backwards vs a later anchor: also skipped
	if d := c.Decisions(); len(d) != 1 || d[0].Trigger != "init" {
		t.Fatalf("warm-up ticks produced decisions beyond init: %v", d)
	}
}

// TestAcceptKeepsClimbing checks the hysteresis accept path: a move followed
// by a clear rate improvement is kept and the climb continues in the same
// direction.
func TestAcceptKeepsClimbing(t *testing.T) {
	c := New(Config{})
	g := c.EnableReadAhead(4, 1, 32)
	wall, msgs := int64(0), int64(0)
	step := func(d int64) {
		wall += int64(100 * time.Millisecond)
		msgs += d
		c.Step(snap(wall, msgs, 0))
	}
	step(50) // anchor
	step(50) // baseline measured, move 4→8 proposed
	if got := g.Depth(); got != 8 {
		t.Fatalf("after first move depth = %d, want 8", got)
	}
	step(100) // clearly above baseline×1.05: accepted, climbs 8→16
	if got := g.Depth(); got != 16 {
		t.Fatalf("accepted move should keep climbing, depth = %d, want 16", got)
	}
	for _, d := range c.Decisions() {
		if d.Trigger == "revert" {
			t.Fatalf("no revert expected in a monotone-improving trace: %v", c.Decisions())
		}
	}
}

// TestRevertRestoresValue checks the hysteresis revert path: a move followed
// by a clear regression restores the previous value and logs the revert.
func TestRevertRestoresValue(t *testing.T) {
	c := New(Config{})
	g := c.EnableReadAhead(4, 1, 32)
	wall, msgs := int64(0), int64(0)
	step := func(d int64) {
		wall += int64(100 * time.Millisecond)
		msgs += d
		c.Step(snap(wall, msgs, 0))
	}
	step(50) // anchor
	step(50) // baseline measured, move 4→8 proposed
	step(10) // far below baseline×0.95: revert
	if got := g.Depth(); got != 4 {
		t.Fatalf("regressing move not reverted: depth = %d, want 4", got)
	}
	ds := c.Decisions()
	last := ds[len(ds)-1]
	if last.Trigger != "revert" || last.From != 8 || last.To != 4 {
		t.Fatalf("last decision = %+v, want revert 8→4", last)
	}
}

// TestReadWaitHint checks the snapshot hint: a read-wait share above 5% of
// wall time forces the readahead climb upward with the "read-wait" trigger.
func TestReadWaitHint(t *testing.T) {
	c := New(Config{})
	c.EnableReadAhead(8, 1, 32)
	wall, msgs := int64(0), int64(0)
	step := func(d, rw int64) {
		wall += int64(100 * time.Millisecond)
		msgs += d
		c.Step(snap(wall, msgs, rw))
	}
	step(50, 0)      // anchor
	step(50, 0)      // baseline, climb move proposed
	step(50, 0)      // neutral evaluation tick
	step(50, wall/5) // 20% read-wait share on a proposing tick
	var hinted bool
	for _, d := range c.Decisions() {
		if d.Trigger == "read-wait" {
			hinted = true
			if d.To <= d.From {
				t.Fatalf("read-wait hint must climb upward, got %+v", d)
			}
		}
	}
	if !hinted {
		t.Fatalf("no read-wait decision in %v", c.Decisions())
	}
}

// TestAttach checks the report section carries the log, interval, seed and
// final knob values; Attach must be nil-safe on both sides.
func TestAttach(t *testing.T) {
	var nilC *Controller
	nilC.Attach(&metrics.RunReport{}) // must not panic
	c := New(Config{Seed: 3, Interval: 50 * time.Millisecond})
	c.Attach(nil) // must not panic
	g := c.EnableReadAhead(2, 1, 8)
	_ = g
	rep := &metrics.RunReport{}
	c.Attach(rep)
	if rep.Tuning == nil {
		t.Fatal("Attach left Tuning nil")
	}
	if rep.Tuning.Seed != 3 || rep.Tuning.IntervalNS != int64(50*time.Millisecond) {
		t.Fatalf("Tuning header = %+v", rep.Tuning)
	}
	if got := rep.Tuning.Final["readahead"]; got != 2 {
		t.Fatalf("Final[readahead] = %d, want 2", got)
	}
	if len(rep.Tuning.Decisions) == 0 {
		t.Fatal("Tuning.Decisions empty: the init record must always be present")
	}
}

// TestTokensResize checks the admission semaphore's live-resize contract and
// its nil-receiver no-op behavior.
func TestTokensResize(t *testing.T) {
	var nilT *Tokens
	if !nilT.Acquire(nil) {
		t.Fatal("nil Tokens must admit everything")
	}
	nilT.Release()

	tk := NewTokens(2, 1, 4)
	stop := make(chan struct{})
	if !tk.Acquire(stop) || !tk.Acquire(stop) {
		t.Fatal("two acquires within the limit must not block")
	}
	// A third acquire blocks until Resize raises the limit.
	got := make(chan bool, 1)
	go func() { got <- tk.Acquire(stop) }()
	select {
	case <-got:
		t.Fatal("acquire beyond the limit did not block")
	case <-time.After(20 * time.Millisecond):
	}
	tk.Resize(3)
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("acquire returned false after Resize")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Resize did not wake the blocked acquire")
	}
	// A blocked acquire aborts when stop closes.
	go func() { got <- tk.Acquire(stop) }()
	close(stop)
	select {
	case ok := <-got:
		if ok {
			t.Fatal("acquire must return false once stop closes")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("closing stop did not unblock the acquire")
	}
	tk.Release()
	tk.Release()
	tk.Release()
}

// Package autotune closes the loop between the run report's live metrics
// and the pipeline's cheap-to-change knobs, after the run-time parameter
// tuning argument of arXiv 1910.14548 and the staging-depth tuning of
// Region Templates (arXiv 1405.7958): rather than hand-picking read-ahead
// depth and compute concurrency per machine and workload, a small
// hill-climbing controller observes throughput every tick and walks the
// knobs toward the best observed rate, with hysteresis so noise does not
// cause oscillation and a fixed-seed tie-break so a given metric trace
// always reproduces the same decision log.
//
// Two tuning regimes share this package:
//
//   - Live (in-run): Controller resizes a readahead.Gate (prefetch depth)
//     and a Tokens semaphore (texture admission) while the engines run,
//     fed by metrics.Snapshot samples from the filter runtime's Monitor
//     hook. Tuning only changes scheduling, never routing or values, so
//     the texture output stays bit-identical to an untuned run.
//   - Cross-run: Memo journals (config fingerprint, parameter cell) →
//     measured result, so repeated experiment sweeps over the expensive
//     knobs (chunk dims, copy counts, kernel block) reuse prior trials
//     instead of recomputing them.
package autotune

import (
	"sync"
	"time"

	"haralick4d/internal/metrics"
	"haralick4d/internal/readahead"
)

// Defaults for Config zero values.
const (
	DefaultInterval   = 100 * time.Millisecond
	DefaultHysteresis = 0.05
	DefaultSeed       = 1
)

// Config parameterizes a Controller. The zero value is usable: seed 1,
// 100 ms ticks, 5% hysteresis.
type Config struct {
	// Seed fixes the tie-break RNG so a given metric trace reproduces the
	// same decisions. 0 means DefaultSeed.
	Seed int64
	// Interval is the sampling period of the live loop. 0 means
	// DefaultInterval.
	Interval time.Duration
	// Hysteresis is the relative dead-band around the baseline rate: a
	// move is accepted only above baseline×(1+h) and reverted only below
	// baseline×(1−h). 0 means DefaultHysteresis.
	Hysteresis float64
	// CacheStats, when set, is sampled into each snapshot's block-cache
	// fields (hits, misses) — observability for the decision log.
	CacheStats func() (hits, misses int64)
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return DefaultSeed
	}
	return c.Seed
}

func (c Config) interval() time.Duration {
	if c.Interval <= 0 {
		return DefaultInterval
	}
	return c.Interval
}

func (c Config) hysteresis() float64 {
	if c.Hysteresis <= 0 {
		return DefaultHysteresis
	}
	return c.Hysteresis
}

// knob is one tunable parameter: an actuator (get/set), a step rule, and
// hill-climbing state.
type knob struct {
	name string
	get  func() int
	set  func(int) int // clamps; returns the applied value
	step func(cur, dir int) int
	// hint inspects a snapshot and returns a preferred direction (or 0);
	// it overrides the climb direction when it fires.
	hint    func(s *metrics.Snapshot) (dir int, trigger string)
	dir     int
	prev    int  // value before the in-flight move
	moved   bool // a move awaits evaluation
	cool    int  // ticks to skip after a revert
	trigger string
}

// Controller is the deterministic feedback loop. Knobs are registered
// before the run via the Enable* methods; during the run either Run drives
// Step from a ticker, or a test drives Step directly with a synthetic
// snapshot trace.
type Controller struct {
	cfg  Config
	hyst float64
	tick time.Duration
	rng  uint64

	mu        sync.Mutex
	knobs     []*knob
	active    int
	decisions []metrics.TuningDecision

	lastMsgs int64
	lastWall int64
	baseline float64 // accepted msgs/ns rate of the current configuration
	haveBase bool
}

// New returns a controller with no knobs; Enable* methods register them.
func New(cfg Config) *Controller {
	return &Controller{
		cfg:  cfg,
		hyst: cfg.hysteresis(),
		tick: cfg.interval(),
		rng:  uint64(cfg.seed()),
	}
}

// Interval returns the live loop's sampling period.
func (c *Controller) Interval() time.Duration { return c.tick }

// xorshift64star — the deterministic tie-break source.
func (c *Controller) rand() uint64 {
	c.rng ^= c.rng >> 12
	c.rng ^= c.rng << 25
	c.rng ^= c.rng >> 27
	return c.rng * 0x2545F4914F6CDD1D
}

func (c *Controller) record(atNS int64, name string, from, to int, trigger string, rate float64) {
	c.decisions = append(c.decisions, metrics.TuningDecision{
		AtNS: atNS, Knob: name, From: from, To: to,
		Trigger: trigger, Metric: rate * 1e9, // msgs/ns → msgs/s
	})
}

// EnableReadAhead registers the prefetch-depth knob and returns the gate
// the reader filters must share. The climb is multiplicative (double or
// halve) over [lo, hi]; a read-wait share above 5% of wall time hints the
// climb upward (the readers are the bottleneck, buy more overlap).
func (c *Controller) EnableReadAhead(start, lo, hi int) *readahead.Gate {
	g := readahead.NewGate(start, lo, hi)
	c.mu.Lock()
	defer c.mu.Unlock()
	k := &knob{
		name: "readahead",
		get:  g.Depth,
		set:  g.Resize,
		step: func(cur, dir int) int {
			if dir > 0 {
				return cur * 2
			}
			return cur / 2
		},
		hint: func(s *metrics.Snapshot) (int, string) {
			if s.WallNS > 0 && float64(s.SpanNS(metrics.SpanReadWait))/float64(s.WallNS) > 0.05 {
				return +1, "read-wait"
			}
			return 0, ""
		},
		dir: +1,
	}
	c.knobs = append(c.knobs, k)
	c.record(0, k.name, g.Depth(), g.Depth(), "init", 0)
	return g
}

// EnableAdmission registers the compute-admission knob and returns the
// token semaphore the texture filters must share. The climb is additive
// (±1) over [lo, hi], defaulting downward: with copies already sized by
// the layout, the interesting experiment is usually shedding concurrency
// when copies contend.
func (c *Controller) EnableAdmission(start, lo, hi int) *Tokens {
	t := NewTokens(start, lo, hi)
	c.mu.Lock()
	defer c.mu.Unlock()
	k := &knob{
		name: "admission",
		get:  t.Limit,
		set:  t.Resize,
		step: func(cur, dir int) int { return cur + dir },
		dir:  -1,
	}
	c.knobs = append(c.knobs, k)
	c.record(0, k.name, t.Limit(), t.Limit(), "init", 0)
	return t
}

// Step consumes one snapshot and possibly turns one knob. It is the whole
// control law, deterministic in (seed, snapshot trace):
//
//   - The objective is the message completion rate: Δ(total MsgsOut) over
//     Δwall between consecutive snapshots.
//   - Warm-up ticks (no output yet) and clock-stalled ticks are skipped.
//   - A pending move is evaluated against the baseline with hysteresis:
//     accepted (rate > base×(1+h): new baseline, keep climbing), reverted
//     (rate < base×(1−h): restore, flip direction, 2-tick cooldown,
//     re-measure baseline), or neutral (keep the value; a seeded coin
//     decides between probing this knob again and rotating to the next).
//   - Otherwise the active knob proposes its next value; a knob pinned at
//     its bound flips direction and rotates.
func (c *Controller) Step(s *metrics.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.knobs) == 0 {
		return
	}
	msgs := s.TotalMsgsOut()
	wall := s.WallNS
	if msgs == 0 || wall <= c.lastWall {
		return // warm-up: leave the window anchored at the last real tick
	}
	if c.lastWall == 0 {
		c.lastMsgs, c.lastWall = msgs, wall
		return
	}
	rate := float64(msgs-c.lastMsgs) / float64(wall-c.lastWall)
	c.lastMsgs, c.lastWall = msgs, wall

	k := c.knobs[c.active]
	if !c.haveBase {
		c.baseline, c.haveBase = rate, true
	} else if k.moved {
		k.moved = false
		switch {
		case rate > c.baseline*(1+c.hyst):
			c.baseline = rate // improvement: keep the value, keep climbing
		case rate < c.baseline*(1-c.hyst):
			cur := k.get()
			applied := k.set(k.prev)
			c.record(wall, k.name, cur, applied, "revert", rate)
			k.dir = -k.dir
			k.cool = 2
			c.haveBase = false // re-measure after the revert settles
			c.advance()
			return
		default:
			// Neutral: seeded coin — probe this knob again or rotate.
			if c.rand()&1 == 0 {
				c.advance()
			}
			c.baseline = rate
			return
		}
	}
	if k.cool > 0 {
		k.cool--
		c.advance()
		return
	}
	dir := k.dir
	trigger := "climb"
	if k.hint != nil {
		if d, why := k.hint(s); d != 0 {
			dir, k.dir = d, d
			trigger = why
		}
	}
	cur := k.get()
	next := k.step(cur, dir)
	applied := k.set(next)
	if applied == cur { // pinned at a bound: flip and rotate
		k.dir = -k.dir
		c.advance()
		return
	}
	k.prev = cur
	k.moved = true
	k.trigger = trigger
	c.record(wall, k.name, cur, applied, trigger, rate)
}

func (c *Controller) advance() {
	c.active = (c.active + 1) % len(c.knobs)
}

// Run drives Step from a ticker until stop closes — the function the
// filter runtime's Monitor hook calls. snap must be safe to call from
// this goroutine (filter.Probe.Snapshot is).
func (c *Controller) Run(stop <-chan struct{}, snap func() *metrics.Snapshot) {
	t := time.NewTicker(c.tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s := snap()
			if c.cfg.CacheStats != nil {
				s.CacheHits, s.CacheMisses = c.cfg.CacheStats()
			}
			c.Step(s)
		}
	}
}

// Decisions returns a copy of the decision log so far.
func (c *Controller) Decisions() []metrics.TuningDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]metrics.TuningDecision(nil), c.decisions...)
}

// Attach writes the controller's decision log and final knob values into
// the run report's Tuning section.
func (c *Controller) Attach(rep *metrics.RunReport) {
	if c == nil || rep == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &metrics.TuningReport{
		Seed:       c.cfg.seed(),
		IntervalNS: int64(c.tick),
		Decisions:  append([]metrics.TuningDecision(nil), c.decisions...),
	}
	if len(c.knobs) > 0 {
		t.Final = make(map[string]int, len(c.knobs))
		for _, k := range c.knobs {
			t.Final[k.name] = k.get()
		}
	}
	rep.Tuning = t
}

package autotune

import "sync"

// Tokens is a resizable admission semaphore: the texture filters take one
// token before computing a chunk and return it after emitting, so the
// token limit is the effective compute concurrency across that filter's
// copies — a knob the controller can turn down to shed concurrency when
// copies thrash, and back up when the pipeline is compute-starved.
//
// All methods are nil-receiver safe: a nil *Tokens admits everything, so
// filters can thread the pointer unconditionally and pay nothing when
// autotuning is off.
type Tokens struct {
	mu     sync.Mutex
	cond   *sync.Cond
	limit  int
	lo, hi int
	out    int
}

// NewTokens returns a semaphore with the given starting limit, clamped
// into [lo, hi]. Bounds are normalized so that 1 <= lo <= hi: a zero-token
// limit would wedge every holder's filter forever.
func NewTokens(limit, lo, hi int) *Tokens {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	t := &Tokens{lo: lo, hi: hi}
	t.cond = sync.NewCond(&t.mu)
	t.limit = t.clamp(limit)
	return t
}

func (t *Tokens) clamp(n int) int {
	if n < t.lo {
		return t.lo
	}
	if n > t.hi {
		return t.hi
	}
	return n
}

// Limit returns the current token limit (∞ for a nil receiver, reported
// as 0).
func (t *Tokens) Limit() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}

// Bounds returns the [lo, hi] resize range.
func (t *Tokens) Bounds() (lo, hi int) {
	if t == nil {
		return 0, 0
	}
	return t.lo, t.hi
}

// Resize sets the limit, clamped into the bounds, and returns the applied
// value. Raising it wakes blocked acquirers; lowering it takes effect as
// held tokens are released.
func (t *Tokens) Resize(n int) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.limit = t.clamp(n)
	t.cond.Broadcast()
	return t.limit
}

// Acquire takes one token, blocking while the semaphore is at its limit.
// It returns false without taking a token once stop is closed; a nil
// receiver always admits.
func (t *Tokens) Acquire(stop <-chan struct{}) bool {
	if t == nil {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.out < t.limit {
		t.out++
		return true
	}
	// Arm a watcher so a close of stop breaks the cond wait. The watcher's
	// Broadcast needs the mutex, which only cond.Wait releases, so the
	// wake-up cannot be lost.
	unarmed := make(chan struct{})
	defer close(unarmed)
	go func() {
		select {
		case <-stop:
			t.mu.Lock()
			t.cond.Broadcast()
			t.mu.Unlock()
		case <-unarmed:
		}
	}()
	for t.out >= t.limit {
		select {
		case <-stop:
			return false
		default:
		}
		t.cond.Wait()
	}
	t.out++
	return true
}

// Release returns one token. Safe on a nil receiver.
func (t *Tokens) Release() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.out--
	t.cond.Broadcast()
	t.mu.Unlock()
}

package autotune

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
)

// Cell is one memoized trial result: the measured elapsed time of a
// parameter cell plus any named metrics the sweep wants to keep (spans,
// rates).
type Cell struct {
	ElapsedNS int64              `json:"elapsed_ns"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// Memo is the cross-run result journal: (config fingerprint, parameter
// cell) → measured Cell, persisted as one JSON file so repeated experiment
// sweeps reuse prior trials instead of recomputing them. Writes are
// write-through with the dataset layer's temp+rename idiom, so a killed
// sweep leaves a valid (if shorter) memo behind.
type Memo struct {
	path string

	mu    sync.Mutex
	cells map[string]Cell
}

// Key builds the canonical memo key from a config fingerprint (see
// checkpoint.Header.Fingerprint) and a cell descriptor ("copies=2,kblock=16").
func Key(fingerprint, cell string) string { return fingerprint + "|" + cell }

// FingerprintBytes returns the short stable digest the memo keys use, for
// inputs that are not checkpoint headers (dataset generation configs).
func FingerprintBytes(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// OpenMemo loads the memo at path, or starts an empty one when the file
// does not exist yet. A corrupt file is an error — silently dropping
// memoized results would turn into silent recomputation.
func OpenMemo(path string) (*Memo, error) {
	m := &Memo{path: path, cells: map[string]Cell{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return nil, fmt.Errorf("autotune: read memo: %w", err)
	}
	if err := json.Unmarshal(data, &m.cells); err != nil {
		return nil, fmt.Errorf("autotune: memo %s corrupt: %w", path, err)
	}
	return m, nil
}

// Get returns the memoized cell for key, if present.
func (m *Memo) Get(key string) (Cell, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[key]
	return c, ok
}

// Len returns the number of memoized cells.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cells)
}

// Put stores the cell under key and persists the memo.
func (m *Memo) Put(key string, c Cell) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[key] = c
	return m.flushLocked()
}

func (m *Memo) flushLocked() error {
	data, err := json.MarshalIndent(m.cells, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(m.path), 0o755); err != nil {
		return err
	}
	tmp := m.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, m.path)
}

package autotune

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMemoRoundTrip checks cells survive a close/reopen cycle and that keys
// separate fingerprints from cells.
func TestMemoRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "memo.json")
	m, err := OpenMemo(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("fresh memo has %d cells", m.Len())
	}
	fp := FingerprintBytes([]byte("config-a"))
	cell := Cell{ElapsedNS: 1234, Metrics: map[string]float64{"rate": 7.5}}
	if err := m.Put(Key(fp, "copies=2,kblock=16"), cell); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(Key(fp, "copies=4,kblock=0"), Cell{ElapsedNS: 99}); err != nil {
		t.Fatal(err)
	}

	re, err := OpenMemo(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened memo has %d cells, want 2", re.Len())
	}
	got, ok := re.Get(Key(fp, "copies=2,kblock=16"))
	if !ok || got.ElapsedNS != 1234 || got.Metrics["rate"] != 7.5 {
		t.Fatalf("round-trip cell = %+v ok=%v", got, ok)
	}
	if _, ok := re.Get(Key(FingerprintBytes([]byte("config-b")), "copies=2,kblock=16")); ok {
		t.Fatal("different fingerprint must not hit the same cell")
	}
}

// TestMemoCorruptIsError checks a damaged memo file fails loudly instead of
// silently recomputing every cell.
func TestMemoCorruptIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMemo(path); err == nil {
		t.Fatal("OpenMemo accepted a corrupt file")
	}
}

// TestFingerprintBytesStable pins the digest so memo files stay valid across
// releases.
func TestFingerprintBytesStable(t *testing.T) {
	if got := FingerprintBytes([]byte("abc")); got != "e71fa2190541574b" {
		t.Fatalf("FingerprintBytes(abc) = %s (fnv-64a changed?)", got)
	}
	if len(FingerprintBytes(nil)) != 16 {
		t.Fatal("fingerprint must be 16 hex digits")
	}
}

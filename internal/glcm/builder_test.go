package glcm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the scratch builder produces exactly the same sparse matrix as
// direct sorted insertion for any pair stream.
func TestBuilderMatchesDirectProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, gRaw uint8) bool {
		g := int(gRaw%31) + 2
		n := int(nRaw % 500)
		rng := rand.New(rand.NewSource(seed))
		direct := NewSparse(g)
		b := NewSparseBuilder(g)
		for k := 0; k < n; k++ {
			x, y := uint8(rng.Intn(g)), uint8(rng.Intn(g))
			direct.Add(x, y)
			b.Add(x, y)
		}
		built := NewSparse(g)
		b.Flush(built)
		if built.Validate() != nil || built.Total != direct.Total {
			return false
		}
		if len(built.Entries) != len(direct.Entries) {
			return false
		}
		for i := range built.Entries {
			if built.Entries[i] != direct.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ComputeSparseScratch+Flush equals ComputeSparse on random ROIs,
// and the builder is reusable across matrices.
func TestComputeSparseScratchProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [4]int{4 + rng.Intn(5), 4 + rng.Intn(5), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		g := 2 + rng.Intn(14)
		data := make([]uint8, dims[0]*dims[1]*dims[2]*dims[3])
		for i := range data {
			data[i] = uint8(rng.Intn(g))
		}
		strides := Strides(dims)
		dirs := Directions(3, 1)
		b := NewSparseBuilder(g)
		got := NewSparse(g)
		// Two rounds through the same builder exercise reuse.
		for round := 0; round < 2; round++ {
			var origin, shape [4]int
			for k := 0; k < 4; k++ {
				shape[k] = 1 + rng.Intn(dims[k])
				origin[k] = rng.Intn(dims[k] - shape[k] + 1)
			}
			want := NewSparse(g)
			ComputeSparse(data, strides, origin, shape, dirs, want)
			ComputeSparseScratch(data, strides, origin, shape, dirs, b)
			b.Flush(got)
			if got.Validate() != nil || got.Total != want.Total || len(got.Entries) != len(want.Entries) {
				return false
			}
			for i := range got.Entries {
				if got.Entries[i] != want.Entries[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuilderFlushEmpty(t *testing.T) {
	b := NewSparseBuilder(8)
	s := NewSparse(8)
	s.Add(1, 2) // stale content must be replaced
	b.Flush(s)
	if s.Total != 0 || len(s.Entries) != 0 {
		t.Errorf("flush of empty builder left %d entries, total %d", len(s.Entries), s.Total)
	}
}

func TestBuilderPanicsOnBadG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSparseBuilder(0)
}

func BenchmarkBuilderScratchROI(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dims := [4]int{32, 32, 8, 8}
	data := make([]uint8, dims[0]*dims[1]*dims[2]*dims[3])
	for i := range data {
		data[i] = uint8(rng.Intn(32))
	}
	strides := Strides(dims)
	dirs := Directions(4, 1)
	bu := NewSparseBuilder(32)
	s := NewSparse(32)
	shape := [4]int{16, 16, 3, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeSparseScratch(data, strides, [4]int{}, shape, dirs, bu)
		bu.Flush(s)
	}
}

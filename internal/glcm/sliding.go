package glcm

// This file contains the incremental sliding-window kernels: when two ROIs
// on the same x raster row overlap (origin stride along x smaller than the
// ROI's x extent), the second ROI's co-occurrence matrix is obtained from
// the first by subtracting the pair contributions of the departing x slab
// and adding those of the entering slab, instead of re-rastering the whole
// ROI. For each direction the pair box of the shifted ROI is the pair box
// of the original ROI translated by the stride along x (pairBounds depends
// only on the ROI shape), so the update touches stride·Y·Z·T voxels per
// direction instead of X·Y·Z·T.
//
// Because all counts are integers, the slide is exact: the updated matrix
// is bit-identical to a full recompute at the new origin. The sequential
// kernels in compute.go remain the verification oracle.

// Reusable reports whether sliding a window of the given shape by stride
// voxels along x reuses any accumulated pairs: at least one direction's
// pair box must be wider along x than the stride. When it returns false a
// slide degenerates to a full subtract + full re-accumulate and a plain
// recompute (ComputeFull / ComputeSparseScratch) is the better kernel.
func Reusable(shape [4]int, stride int, dirs []Direction) bool {
	if stride < 1 {
		return false
	}
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if ok && hi[0]-lo[0] > stride {
			return true
		}
	}
	return false
}

// slabX returns the half-open x ranges (relative to the ROI origin) of the
// departing and entering slabs when a pair box spanning [lo0, hi0) along x
// is shifted by stride: the old box is [lo0, hi0), the new box is
// [lo0+stride, hi0+stride), so [lo0, min(hi0, lo0+stride)) departs and
// [max(hi0, lo0+stride), hi0+stride) enters. The two slabs always have
// equal width, so the matrix total is invariant across a slide.
func slabX(lo0, hi0, stride int) (subLo, subHi, addLo, addHi int) {
	subLo, subHi = lo0, lo0+stride
	if subHi > hi0 {
		subHi = hi0
	}
	addLo, addHi = hi0, hi0+stride
	if addLo < lo0+stride {
		addLo = lo0 + stride
	}
	return
}

// fullSlab accumulates delta (+1 or, via two's-complement wrap-around, -1)
// into both mirror cells for every pair of direction d whose voxel falls in
// the box [lo, hi) restricted to x ∈ [x0, x1), all relative to the ROI
// origin resolved into base. It returns the number of pairs visited.
func fullSlab(data []uint8, strides [4]int, base int, lo, hi [4]int, x0, x1, off, g int, counts []uint32, delta uint32) uint64 {
	if x0 >= x1 {
		return 0
	}
	var pairs uint64
	for t := lo[3]; t < hi[3]; t++ {
		it := base + t*strides[3]
		for z := lo[2]; z < hi[2]; z++ {
			iz := it + z*strides[2]
			for y := lo[1]; y < hi[1]; y++ {
				iy := iz + y*strides[1]
				i0 := iy + x0*strides[0]
				for x := x0; x < x1; x++ {
					a := data[i0]
					b := data[i0+off]
					counts[int(a)*g+int(b)] += delta
					counts[int(b)*g+int(a)] += delta
					pairs++
					i0 += strides[0]
				}
			}
		}
	}
	return pairs
}

// SlideFull updates m — which must hold the co-occurrence matrix of the ROI
// at origin with the given shape — to hold the matrix of the ROI at
// origin+stride along x. The caller must ensure both ROIs lie inside the
// addressed grid. The update is exact (integer counts): the result is
// bit-identical to resetting m and calling ComputeFull at the new origin.
func SlideFull(data []uint8, strides, origin, shape [4]int, stride int, dirs []Direction, m *Full) {
	g := m.G
	counts := m.Counts
	base := origin[0]*strides[0] + origin[1]*strides[1] + origin[2]*strides[2] + origin[3]*strides[3]
	var added, removed uint64
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		subLo, subHi, addLo, addHi := slabX(lo[0], hi[0], stride)
		removed += fullSlab(data, strides, base, lo, hi, subLo, subHi, off, g, counts, ^uint32(0))
		added += fullSlab(data, strides, base, lo, hi, addLo, addHi, off, g, counts, 1)
	}
	m.Total += 2 * added
	m.Total -= 2 * removed
}

// builderAddSlab accumulates the pairs of one slab into the builder,
// appending newly touched keys exactly like ComputeSparseScratch.
func builderAddSlab(data []uint8, strides [4]int, base int, lo, hi [4]int, x0, x1, off int, b *SparseBuilder) uint64 {
	if x0 >= x1 {
		return 0
	}
	g := b.g
	counts := b.counts
	var pairs uint64
	for t := lo[3]; t < hi[3]; t++ {
		it := base + t*strides[3]
		for z := lo[2]; z < hi[2]; z++ {
			iz := it + z*strides[2]
			for y := lo[1]; y < hi[1]; y++ {
				iy := iz + y*strides[1]
				i0 := iy + x0*strides[0]
				for x := x0; x < x1; x++ {
					a := data[i0]
					c := data[i0+off]
					i0 += strides[0]
					k1 := int(a)*g + int(c)
					k2 := int(c)*g + int(a)
					if counts[k1] == 0 {
						b.touched = append(b.touched, uint16(k1))
					}
					counts[k1]++
					if counts[k2] == 0 {
						b.touched = append(b.touched, uint16(k2))
					}
					counts[k2]++
					pairs++
				}
			}
		}
	}
	return pairs
}

// builderSubSlab removes the pairs of one slab from the builder. Keys whose
// count reaches zero stay on the touched list until the next Snapshot
// compacts them away; until then no pairs may be added (an add would see
// the zero count and register the key a second time), which is why
// SlideSparseScratch performs all additions before any subtraction.
func builderSubSlab(data []uint8, strides [4]int, base int, lo, hi [4]int, x0, x1, off int, b *SparseBuilder) uint64 {
	if x0 >= x1 {
		return 0
	}
	g := b.g
	counts := b.counts
	var pairs uint64
	for t := lo[3]; t < hi[3]; t++ {
		it := base + t*strides[3]
		for z := lo[2]; z < hi[2]; z++ {
			iz := it + z*strides[2]
			for y := lo[1]; y < hi[1]; y++ {
				iy := iz + y*strides[1]
				i0 := iy + x0*strides[0]
				for x := x0; x < x1; x++ {
					a := data[i0]
					c := data[i0+off]
					i0 += strides[0]
					counts[int(a)*g+int(c)]--
					counts[int(c)*g+int(a)]--
					pairs++
				}
			}
		}
	}
	return pairs
}

// SlideSparseScratch updates the builder — which must hold the accumulated
// pairs of the ROI at origin with the given shape — to hold the pairs of
// the ROI at origin+stride along x. Call Snapshot afterwards to extract the
// sparse matrix; the result is bit-identical to a fresh accumulate + Flush
// at the new origin.
//
// The entering slabs of every direction are accumulated before any
// departing slab is removed: subtraction can drive a touched key's count to
// zero without delisting it, and an addition on such a key would register
// it twice. With all additions first, the builder's zero-count-means-
// untouched invariant holds whenever keys are appended.
func SlideSparseScratch(data []uint8, strides, origin, shape [4]int, stride int, dirs []Direction, b *SparseBuilder) {
	base := origin[0]*strides[0] + origin[1]*strides[1] + origin[2]*strides[2] + origin[3]*strides[3]
	var added, removed uint64
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		_, _, addLo, addHi := slabX(lo[0], hi[0], stride)
		added += builderAddSlab(data, strides, base, lo, hi, addLo, addHi, off, b)
	}
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		subLo, subHi, _, _ := slabX(lo[0], hi[0], stride)
		removed += builderSubSlab(data, strides, base, lo, hi, subLo, subHi, off, b)
	}
	b.total += 2 * added
	b.total -= 2 * removed
}

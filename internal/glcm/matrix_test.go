package glcm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFullAddSymmetryAndTotal(t *testing.T) {
	m := NewFull(4)
	m.Add(1, 2)
	m.Add(2, 1)
	m.Add(3, 3)
	if !m.Symmetric() {
		t.Error("matrix not symmetric")
	}
	if m.Total != 6 {
		t.Errorf("Total = %d, want 6", m.Total)
	}
	if m.At(1, 2) != 2 || m.At(2, 1) != 2 {
		t.Errorf("off-diagonal cells = %d, %d, want 2, 2", m.At(1, 2), m.At(2, 1))
	}
	if m.At(3, 3) != 2 {
		t.Errorf("diagonal cell = %d, want 2", m.At(3, 3))
	}
	if p := m.P(1, 2); math.Abs(p-2.0/6.0) > 1e-15 {
		t.Errorf("P(1,2) = %v, want 1/3", p)
	}
}

func TestFullReset(t *testing.T) {
	m := NewFull(4)
	m.Add(0, 1)
	m.Reset()
	if m.Total != 0 || m.NonZero() != 0 {
		t.Error("Reset did not clear matrix")
	}
}

func TestSparseMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full := NewFull(8)
	sp := NewSparse(8)
	for k := 0; k < 500; k++ {
		a, b := uint8(rng.Intn(8)), uint8(rng.Intn(8))
		full.Add(a, b)
		sp.Add(a, b)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Total != full.Total {
		t.Fatalf("totals differ: %d vs %d", sp.Total, full.Total)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if sp.At(i, j) != full.At(i, j) {
				t.Fatalf("cell (%d,%d): sparse %d vs full %d", i, j, sp.At(i, j), full.At(i, j))
			}
		}
	}
	if sp.NonZero() != full.NonZero() {
		t.Errorf("NonZero: sparse %d vs full %d", sp.NonZero(), full.NonZero())
	}
}

// Property: Full→Sparse→Full and Sparse→Full→Sparse round-trips preserve
// every cell, the total and the storage size for random pair streams.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, gRaw uint8) bool {
		g := int(gRaw%31) + 2
		n := int(nRaw % 400)
		rng := rand.New(rand.NewSource(seed))
		full := NewFull(g)
		for k := 0; k < n; k++ {
			full.Add(uint8(rng.Intn(g)), uint8(rng.Intn(g)))
		}
		sp := full.Sparse()
		if err := sp.Validate(); err != nil {
			return false
		}
		back := sp.Full()
		if back.Total != full.Total || !back.Symmetric() {
			return false
		}
		for i := range full.Counts {
			if back.Counts[i] != full.Counts[i] {
				return false
			}
		}
		sp2 := back.Sparse()
		if len(sp2.Entries) != len(sp.Entries) {
			return false
		}
		for i := range sp.Entries {
			if sp.Entries[i] != sp2.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: probabilities sum to 1 for any non-empty matrix, in both forms.
func TestProbabilityNormalizationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		g := 16
		n := int(nRaw%300) + 1
		rng := rand.New(rand.NewSource(seed))
		full := NewFull(g)
		sp := NewSparse(g)
		for k := 0; k < n; k++ {
			a, b := uint8(rng.Intn(g)), uint8(rng.Intn(g))
			full.Add(a, b)
			sp.Add(a, b)
		}
		sumF, sumS := 0.0, 0.0
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				sumF += full.P(i, j)
				sumS += sp.P(i, j)
			}
		}
		return math.Abs(sumF-1) < 1e-9 && math.Abs(sumS-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSparseSizeBytes(t *testing.T) {
	sp := NewSparse(32)
	if sp.SizeBytes() != 16 {
		t.Errorf("empty SizeBytes = %d, want 16", sp.SizeBytes())
	}
	sp.Add(1, 2)
	sp.Add(3, 4)
	if sp.SizeBytes() != 16+12 {
		t.Errorf("SizeBytes = %d, want 28", sp.SizeBytes())
	}
}

func TestDensity(t *testing.T) {
	m := NewFull(4)
	m.Add(0, 1) // two cells non-zero
	if got := m.Density(); math.Abs(got-2.0/16.0) > 1e-15 {
		t.Errorf("Density = %v, want 0.125", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	sp := NewSparse(8)
	sp.Add(1, 2)
	sp.Add(3, 3)
	if err := sp.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	bad := *sp
	bad.Entries = append([]Entry(nil), sp.Entries...)
	bad.Entries[0].I, bad.Entries[0].J = 5, 2 // i > j
	if bad.Validate() == nil {
		t.Error("Validate missed i > j")
	}
	bad2 := *sp
	bad2.Total = 999
	if bad2.Validate() == nil {
		t.Error("Validate missed total mismatch")
	}
	bad3 := NewSparse(2)
	bad3.Entries = []Entry{{I: 1, J: 1, Count: 0}}
	if bad3.Validate() == nil {
		t.Error("Validate missed zero count")
	}
}

func TestNewPanicsOnBadG(t *testing.T) {
	for _, f := range []func(){
		func() { NewFull(0) },
		func() { NewFull(257) },
		func() { NewSparse(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

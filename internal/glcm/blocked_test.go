package glcm

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
)

// oracleFull computes the ROI's dense matrix with the sequential reference
// kernel — the bit-exactness baseline for every blocked-kernel test.
func oracleFull(data []uint8, strides [4]int, origin, shape [4]int, dirs []Direction, g int) *Full {
	m := NewFull(g)
	ComputeFull(data, strides, origin, shape, dirs, m)
	return m
}

// checkBlockedRow plans a blocked kernel and walks a full raster row of ROI
// origins (accumulate at the row start, slide afterwards), checking every
// position's dense and sparse snapshots against the legacy oracles.
func checkBlockedRow(t *testing.T, tag string, data []uint8, dims [4]int, origin, shape [4]int, dirs []Direction, g, stride, block int) {
	t.Helper()
	strides := Strides(dims)
	k := GetBlocked(g)
	defer PutBlocked(k)
	if !k.Plan(strides, shape, dirs, stride, block) {
		t.Fatalf("%s: Plan rejected a supported geometry", tag)
	}
	full := NewFull(g)
	sparse := NewSparse(g)
	builder := NewSparseBuilder(g)
	wantSparse := NewSparse(g)
	for first := true; origin[0]+shape[0] <= dims[0]; origin[0] += stride {
		base := origin[0]*strides[0] + origin[1]*strides[1] + origin[2]*strides[2] + origin[3]*strides[3]
		if first {
			k.Reset()
			k.Accumulate(data, base)
			first = false
		} else {
			k.Slide(data, base-stride*strides[0])
		}
		want := oracleFull(data, strides, origin, shape, dirs, g)
		k.SnapshotFull(full)
		if full.Total != want.Total || !reflect.DeepEqual(full.Counts, want.Counts) {
			t.Fatalf("%s: dense snapshot at %v diverged from ComputeFull (total %d vs %d)", tag, origin, full.Total, want.Total)
		}
		if k.Pairs()*2 != want.Total {
			t.Fatalf("%s: kernel pair count %d inconsistent with oracle total %d", tag, k.Pairs(), want.Total)
		}
		k.SnapshotSparse(sparse)
		if err := sparse.Validate(); err != nil {
			t.Fatalf("%s: sparse snapshot at %v invalid: %v", tag, origin, err)
		}
		builder.Clear()
		ComputeSparseScratch(data, strides, origin, shape, dirs, builder)
		builder.Flush(wantSparse)
		if sparse.Total != wantSparse.Total || !reflect.DeepEqual(sparse.Entries, wantSparse.Entries) {
			t.Fatalf("%s: sparse snapshot at %v diverged from SparseBuilder.Flush", tag, origin)
		}
	}
}

// TestBlockedMatchesOracleProperty drives the blocked kernel over random
// geometries — every gray-level count the system supports including the
// G=256 edge, direction sets of 2–4 dimensions at distances 1 and 2, random
// ROI shapes and slide strides — and requires bit-identical matrices at
// every raster position.
func TestBlockedMatchesOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gs := []int{8, 16, 32, 256}
	for iter := 0; iter < 80; iter++ {
		g := gs[iter%len(gs)]
		ndim := 2 + rng.Intn(3)
		distance := 1 + rng.Intn(2)
		dirs := Directions(ndim, distance)
		dims := [4]int{5 + rng.Intn(12), 3 + rng.Intn(6), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		data := randData(rng, dims, g)
		if g == 256 {
			// Touch the top gray level so the packed uint16 key i*g+j can
			// reach its maximum value 65535 (i = j = 255).
			for i := 0; i < len(data)/3; i++ {
				data[rng.Intn(len(data))] = 255
			}
		}
		shape := [4]int{
			1 + rng.Intn(dims[0]),
			1 + rng.Intn(dims[1]),
			1 + rng.Intn(dims[2]),
			1 + rng.Intn(dims[3]),
		}
		if PairCount(shape, dirs) == 0 {
			continue
		}
		origin := [4]int{
			0,
			rng.Intn(dims[1] - shape[1] + 1),
			rng.Intn(dims[2] - shape[2] + 1),
			rng.Intn(dims[3] - shape[3] + 1),
		}
		stride := 1 + rng.Intn(2)
		block := rng.Intn(3) * 2 // 0 (untiled), 2 or 4
		checkBlockedRow(t, "property", data, dims, origin, shape, dirs, g, stride, block)
	}
}

// TestBlockedPaperGeometry pins the paper's exact configuration: 16×16×3×3
// ROI, G=32, all 40 canonical 4D directions at distance 1, slide stride 1.
func TestBlockedPaperGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dims := [4]int{24, 20, 4, 4}
	data := randData(rng, dims, 32)
	checkBlockedRow(t, "paper", data, dims, [4]int{0, 1, 0, 1}, [4]int{16, 16, 3, 3}, Directions(4, 1), 32, 1, 0)
}

// TestBlockedPlanFallback covers the geometries Plan must refuse: y-fastest
// strides, a non-positive stride and direction sets that overflow the 64-bit
// row masks. Refusal is what routes the scan back to the legacy kernels.
func TestBlockedPlanFallback(t *testing.T) {
	k := NewBlocked(16)
	dims := [4]int{8, 8, 2, 2}
	shape := [4]int{4, 4, 2, 2}
	if k.Plan([4]int{8, 1, 64, 128}, shape, Directions(2, 1), 1, 0) {
		t.Error("Plan accepted a grid that is not x-fastest")
	}
	if k.Plan(Strides(dims), shape, Directions(2, 1), 0, 0) {
		t.Error("Plan accepted stride 0")
	}
	if k.Plan(Strides(dims), shape, Directions(2, 1), 1, -1) {
		t.Error("Plan accepted a negative block")
	}
	wide := AllDirections(4, 1) // 80 directions > 64 mask bits
	if k.Plan(Strides(dims), shape, wide, 1, 0) {
		t.Error("Plan accepted a direction set wider than the row masks")
	}
	if !k.Plan(Strides(dims), shape, Directions(4, 1), 1, 0) {
		t.Error("Plan rejected the canonical 40-direction set")
	}
}

// TestBlockedPoolReuse checks that pooled kernels come back zeroed and that
// a gray-level mismatch allocates a fresh kernel instead of corrupting the
// scratch size.
func TestBlockedPoolReuse(t *testing.T) {
	k := GetBlocked(16)
	dims := [4]int{6, 4, 1, 1}
	data := make([]uint8, 24)
	for i := range data {
		data[i] = uint8(i % 16)
	}
	if !k.Plan(Strides(dims), [4]int{3, 2, 1, 1}, Directions(2, 1), 1, 0) {
		t.Fatal("Plan failed")
	}
	k.Accumulate(data, 0)
	if k.Pairs() == 0 {
		t.Fatal("accumulate recorded no pairs")
	}
	PutBlocked(k)
	k2 := GetBlocked(16)
	if k2.Pairs() != 0 {
		t.Error("pooled kernel not reset")
	}
	for _, c := range k2.counts {
		if c != 0 {
			t.Error("pooled kernel scratch not zeroed")
			break
		}
	}
	PutBlocked(k2)
	k3 := GetBlocked(256)
	if k3.G() != 256 || len(k3.counts) != 2*256*256 {
		t.Errorf("pool returned a kernel of the wrong size: g=%d len=%d", k3.G(), len(k3.counts))
	}
	PutBlocked(k3)
}

// TestBuilderMaxKeyG256 pins the G=256 edge of the legacy sparse builder
// used as the comparison oracle: the packed uint16 touched key for the
// (255, 255) cell is exactly 65535, the type's maximum value.
func TestBuilderMaxKeyG256(t *testing.T) {
	b := NewSparseBuilder(256)
	b.Add(255, 255)
	b.Add(255, 255)
	b.Add(0, 255)
	s := NewSparse(256)
	b.Flush(s)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.At(255, 255); got != 4 {
		t.Errorf("cell (255,255) = %d, want 4", got)
	}
	if got := s.At(0, 255); got != 1 {
		t.Errorf("cell (0,255) = %d, want 1", got)
	}
}

// FuzzBlockedKernel fuzzes the blocked kernel against the dense oracle:
// arbitrary bytes pick the geometry and fill the grid, and every raster
// position's snapshot must match ComputeFull bit for bit.
func FuzzBlockedKernel(f *testing.F) {
	f.Add([]byte{3, 2, 1, 1, 2, 2, 1, 1, 0, 1, 2, 3, 4, 5, 6, 7}, uint8(3), uint8(1))
	f.Add([]byte{16, 4, 2, 2, 1, 1, 1, 1, 9, 9, 9}, uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, gsel, dsel uint8) {
		if len(raw) < 8 {
			return
		}
		gs := []int{8, 16, 32, 256}
		g := gs[int(gsel)%len(gs)]
		dims := [4]int{2 + int(raw[0])%8, 2 + int(raw[1])%5, 1 + int(raw[2])%3, 1 + int(raw[3])%3}
		shape := [4]int{
			1 + int(raw[4])%dims[0],
			1 + int(raw[5])%dims[1],
			1 + int(raw[6])%dims[2],
			1 + int(raw[7])%dims[3],
		}
		ndim := 2 + int(dsel)%3
		distance := 1 + int(dsel/3)%2
		dirs := Directions(ndim, distance)
		if PairCount(shape, dirs) == 0 {
			return
		}
		n := dims[0] * dims[1] * dims[2] * dims[3]
		data := make([]uint8, n)
		seed := raw[8:]
		if len(seed) == 0 {
			seed = []byte{1}
		}
		// Deterministic fill from the fuzz payload, clamped to the gray range.
		var h uint64 = 1469598103934665603
		for i := range data {
			h ^= uint64(seed[i%len(seed)]) + uint64(i)
			h *= 1099511628211
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], h)
			data[i] = uint8(int(buf[0]) % g)
		}
		checkBlockedRow(t, "fuzz", data, dims, [4]int{}, shape, dirs, g, 1, int(raw[0])%3)
	})
}

package glcm

import (
	"testing"
	"testing/quick"
)

func TestDirectionCounts(t *testing.T) {
	// Paper §3: 8 directions in 2D of which 4 are unique; 4D analogues.
	cases := []struct {
		ndim      int
		all, uniq int
	}{
		{1, 2, 1},
		{2, 8, 4},
		{3, 26, 13},
		{4, 80, 40},
	}
	for _, c := range cases {
		if got := len(AllDirections(c.ndim, 1)); got != c.all {
			t.Errorf("AllDirections(%d): got %d, want %d", c.ndim, got, c.all)
		}
		if got := len(Directions(c.ndim, 1)); got != c.uniq {
			t.Errorf("Directions(%d): got %d, want %d", c.ndim, got, c.uniq)
		}
	}
}

func TestDirectionsCanonicalAndDistance(t *testing.T) {
	for _, dist := range []int{1, 2, 3} {
		for _, d := range Directions(4, dist) {
			if !d.Canonical() {
				t.Errorf("non-canonical direction %v", d)
			}
			if d.Neg().Canonical() {
				t.Errorf("both %v and %v canonical", d, d.Neg())
			}
			for _, c := range d {
				if c != 0 && c != dist && c != -dist {
					t.Errorf("direction %v has component %d, want 0 or ±%d", d, c, dist)
				}
			}
		}
	}
}

// Property: the canonical set plus its negations reconstructs the full set.
func TestDirectionsHalfSpaceProperty(t *testing.T) {
	f := func(ndimRaw, distRaw uint8) bool {
		ndim := int(ndimRaw%4) + 1
		dist := int(distRaw%3) + 1
		all := AllDirections(ndim, dist)
		uniq := Directions(ndim, dist)
		if len(all) != 2*len(uniq) {
			return false
		}
		seen := map[Direction]bool{}
		for _, d := range uniq {
			seen[d] = true
			seen[d.Neg()] = true
		}
		for _, d := range all {
			if !seen[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAxisDirections(t *testing.T) {
	dirs := AxisDirections(4, 2)
	want := []Direction{{2, 0, 0, 0}, {0, 2, 0, 0}, {0, 0, 2, 0}, {0, 0, 0, 2}}
	if len(dirs) != len(want) {
		t.Fatalf("got %d directions, want %d", len(dirs), len(want))
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Errorf("dirs[%d] = %v, want %v", i, dirs[i], want[i])
		}
	}
}

func TestDirectionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Directions(0, 1) },
		func() { Directions(5, 1) },
		func() { Directions(2, 0) },
		func() { AllDirections(0, 1) },
		func() { AxisDirections(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

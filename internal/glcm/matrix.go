package glcm

import (
	"fmt"
	"sort"
)

// Full is the dense co-occurrence matrix representation: a G×G array of
// pair counts. Counting is symmetric — each observed voxel pair (a, b)
// increments both (a, b) and (b, a) — so the matrix is always symmetric and
// Total is twice the number of observed pairs.
type Full struct {
	G      int      // number of gray levels; the matrix is G×G
	Counts []uint32 // row-major, len G*G
	Total  uint64   // sum of all counts (2 × pairs observed)
}

// NewFull returns an empty dense matrix for g gray levels.
func NewFull(g int) *Full {
	if g < 1 || g > 256 {
		panic("glcm: gray levels must be in [1, 256]")
	}
	return &Full{G: g, Counts: make([]uint32, g*g)}
}

// Reset zeroes the matrix for reuse without reallocating.
func (m *Full) Reset() {
	clear(m.Counts)
	m.Total = 0
}

// Add records one voxel pair with gray levels a and b, incrementing both the
// (a, b) and (b, a) cells per the symmetric-counting convention.
func (m *Full) Add(a, b uint8) {
	m.Counts[int(a)*m.G+int(b)]++
	m.Counts[int(b)*m.G+int(a)]++
	m.Total += 2
}

// At returns the raw count in cell (i, j).
func (m *Full) At(i, j int) uint32 { return m.Counts[i*m.G+j] }

// P returns the normalized joint probability p(i, j). A matrix with no
// observations returns 0 everywhere.
func (m *Full) P(i, j int) float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.At(i, j)) / float64(m.Total)
}

// NonZero returns the number of non-zero cells counting the symmetric pair
// (i, j)/(j, i) once — the storage size of the equivalent sparse form. This
// is the quantity the paper reports as "10.7 non-zero entries per matrix".
func (m *Full) NonZero() int {
	n := 0
	for i := 0; i < m.G; i++ {
		for j := i; j < m.G; j++ {
			if m.At(i, j) != 0 {
				n++
			}
		}
	}
	return n
}

// Density returns the fraction of the G×G cells that are non-zero (counting
// both symmetric cells, matching the paper's "about 1% of the matrix").
func (m *Full) Density() float64 {
	n := 0
	for _, c := range m.Counts {
		if c != 0 {
			n++
		}
	}
	return float64(n) / float64(m.G*m.G)
}

// Sparse converts the matrix to its sparse representation.
func (m *Full) Sparse() *Sparse {
	s := NewSparse(m.G)
	for i := 0; i < m.G; i++ {
		for j := i; j < m.G; j++ {
			if c := m.At(i, j); c != 0 {
				s.Entries = append(s.Entries, Entry{I: uint8(i), J: uint8(j), Count: c})
			}
		}
	}
	s.Total = m.Total
	return s
}

// Symmetric reports whether the stored counts are symmetric. Matrices built
// through Add always are; this is a testing/validation aid.
func (m *Full) Symmetric() bool {
	for i := 0; i < m.G; i++ {
		for j := i + 1; j < m.G; j++ {
			if m.At(i, j) != m.At(j, i) {
				return false
			}
		}
	}
	return true
}

// Entry is one stored cell of a sparse co-occurrence matrix: the gray-level
// pair (I ≤ J) and its symmetric count (equal to the dense cells (I, J) and
// (J, I); stored once per the paper's storage scheme).
type Entry struct {
	I, J  uint8
	Count uint32
}

// Sparse is the sparse co-occurrence matrix representation: only non-zero,
// non-duplicated (i ≤ j) entries are stored, sorted by (I, J). Total keeps
// the same convention as Full.Total (2 × pairs observed) so that
// probabilities agree across representations.
type Sparse struct {
	G       int
	Entries []Entry
	Total   uint64

	// index maps a packed (i, j) key to entry position + 1 (0 = absent).
	// It is a builder-side accelerator only — the stored and transmitted
	// representation remains the sorted entry triples — and is allocated
	// lazily on the first Add, so converted/deserialized matrices carry no
	// table. G·G uint16s is 2 KiB at G=32 and stays L1-resident.
	index []uint16
}

// NewSparse returns an empty sparse matrix for g gray levels.
func NewSparse(g int) *Sparse {
	if g < 1 || g > 256 {
		panic("glcm: gray levels must be in [1, 256]")
	}
	return &Sparse{G: g}
}

// Reset empties the matrix for reuse, keeping the entry slice's capacity.
// Only the keys actually present are cleared from the index, so resetting a
// sparse matrix costs O(entries), not O(G²).
func (s *Sparse) Reset() {
	if s.index != nil {
		for _, e := range s.Entries {
			s.index[int(e.I)*s.G+int(e.J)] = 0
		}
	}
	s.Entries = s.Entries[:0]
	s.Total = 0
}

// Add records one voxel pair with gray levels a and b. Each stored entry
// always equals the corresponding dense cell: a diagonal pair contributes 2
// to its cell (both orderings land on the same cell) while an off-diagonal
// pair contributes 1 to each of the two mirror cells, of which only one is
// stored. Probabilities are therefore identical across representations.
//
// Entries are kept sorted by (I, J); the per-pair key lookup goes through
// the builder index, and the occasional insertion shifts the tail and
// refreshes its index slots. This residual bookkeeping is the "overhead
// introduced due to storing and accessing the co-occurrence matrix in
// sparse representation" the paper observes in the combined HMP filter.
func (s *Sparse) Add(a, b uint8) {
	var inc uint32 = 1
	if a == b {
		inc = 2
	} else if a > b {
		a, b = b, a
	}
	s.ensureIndex()
	if at := s.index[int(a)*s.G+int(b)]; at != 0 {
		s.Entries[at-1].Count += inc
		s.Total += 2
		return
	}
	s.insertNew(a, b, inc)
	s.Total += 2
}

// ensureIndex builds the builder index lazily (matrices produced by
// conversion or deserialization have none until first accumulated into).
func (s *Sparse) ensureIndex() {
	if s.index != nil {
		return
	}
	s.index = make([]uint16, s.G*s.G)
	for k, e := range s.Entries {
		s.index[int(e.I)*s.G+int(e.J)] = uint16(k + 1)
	}
}

// insertNew inserts a brand-new cell (a ≤ b already normalized) at its
// sorted position and refreshes the index slots of the shifted tail. The
// caller updates Total.
func (s *Sparse) insertNew(a, b uint8, inc uint32) {
	lo, hi := 0, len(s.Entries)
	key := uint16(a)<<8 | uint16(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := &s.Entries[mid]
		if uint16(e.I)<<8|uint16(e.J) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.Entries = append(s.Entries, Entry{})
	copy(s.Entries[lo+1:], s.Entries[lo:])
	s.Entries[lo] = Entry{I: a, J: b, Count: inc}
	for k := lo; k < len(s.Entries); k++ {
		e := s.Entries[k]
		s.index[int(e.I)*s.G+int(e.J)] = uint16(k + 1)
	}
}

// At returns the dense-equivalent count for cell (i, j).
func (s *Sparse) At(i, j int) uint32 {
	if i > j {
		i, j = j, i
	}
	a, b := uint8(i), uint8(j)
	idx := sort.Search(len(s.Entries), func(k int) bool {
		e := s.Entries[k]
		return e.I > a || (e.I == a && e.J >= b)
	})
	if idx < len(s.Entries) && s.Entries[idx].I == a && s.Entries[idx].J == b {
		return s.Entries[idx].Count
	}
	return 0
}

// P returns the normalized joint probability p(i, j).
func (s *Sparse) P(i, j int) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.At(i, j)) / float64(s.Total)
}

// NonZero returns the number of stored entries.
func (s *Sparse) NonZero() int { return len(s.Entries) }

// Full converts the matrix to its dense representation.
func (s *Sparse) Full() *Full {
	m := NewFull(s.G)
	for _, e := range s.Entries {
		m.Counts[int(e.I)*m.G+int(e.J)] = e.Count
		m.Counts[int(e.J)*m.G+int(e.I)] = e.Count
	}
	m.Total = s.Total
	return m
}

// SizeBytes returns the approximate in-memory/wire size of the sparse
// matrix: 6 bytes per entry (two gray levels + count) plus the header. This
// is what makes the sparse form attractive on the HCC→HPC stream.
func (s *Sparse) SizeBytes() int { return 16 + 6*len(s.Entries) }

// Validate checks structural invariants (sorted unique entries, i ≤ j,
// counts consistent with Total). It returns a descriptive error for tests.
func (s *Sparse) Validate() error {
	var sum uint64
	for k, e := range s.Entries {
		if e.I > e.J {
			return fmt.Errorf("glcm: entry %d has i > j (%d > %d)", k, e.I, e.J)
		}
		if int(e.J) >= s.G {
			return fmt.Errorf("glcm: entry %d gray level %d out of range G=%d", k, e.J, s.G)
		}
		if k > 0 {
			prev := s.Entries[k-1]
			if prev.I > e.I || (prev.I == e.I && prev.J >= e.J) {
				return fmt.Errorf("glcm: entries not strictly sorted at %d", k)
			}
		}
		if e.Count == 0 {
			return fmt.Errorf("glcm: entry %d has zero count", k)
		}
		if e.I == e.J {
			sum += uint64(e.Count)
		} else {
			sum += 2 * uint64(e.Count)
		}
	}
	if sum != s.Total {
		return fmt.Errorf("glcm: entry counts sum to %d (dense-equivalent), Total = %d", sum, s.Total)
	}
	return nil
}

package glcm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCompute is a slow, obviously-correct reference: enumerate every voxel
// of the ROI and every direction with explicit bounds checks.
func refCompute(data []uint8, strides, origin, shape [4]int, dirs []Direction, g int) *Full {
	m := NewFull(g)
	var p [4]int
	for p[3] = 0; p[3] < shape[3]; p[3]++ {
		for p[2] = 0; p[2] < shape[2]; p[2]++ {
			for p[1] = 0; p[1] < shape[1]; p[1]++ {
				for p[0] = 0; p[0] < shape[0]; p[0]++ {
					for _, d := range dirs {
						inside := true
						var q [4]int
						for k := 0; k < 4; k++ {
							q[k] = p[k] + d[k]
							if q[k] < 0 || q[k] >= shape[k] {
								inside = false
								break
							}
						}
						if !inside {
							continue
						}
						ia, ib := 0, 0
						for k := 0; k < 4; k++ {
							ia += (origin[k] + p[k]) * strides[k]
							ib += (origin[k] + q[k]) * strides[k]
						}
						m.Add(data[ia], data[ib])
					}
				}
			}
		}
	}
	return m
}

func randomGrid(rng *rand.Rand, dims [4]int, g int) []uint8 {
	n := dims[0] * dims[1] * dims[2] * dims[3]
	data := make([]uint8, n)
	for i := range data {
		data[i] = uint8(rng.Intn(g))
	}
	return data
}

func TestComputeFull2DKnown(t *testing.T) {
	// The classic 4×4 example from Haralick's paper:
	//   0 0 1 1
	//   0 0 1 1
	//   0 2 2 2
	//   2 2 3 3
	// For direction (1,0) (0°), the symmetric GLCM has known counts.
	img := []uint8{
		0, 0, 1, 1,
		0, 0, 1, 1,
		0, 2, 2, 2,
		2, 2, 3, 3,
	}
	dims := [4]int{4, 4, 1, 1}
	m := NewFull(4)
	ComputeFull(img, Strides(dims), [4]int{}, dims, []Direction{{1, 0, 0, 0}}, m)
	// Haralick 1973, Fig. 3: horizontal GLCM
	want := [4][4]uint32{
		{4, 2, 1, 0},
		{2, 4, 0, 0},
		{1, 0, 6, 1},
		{0, 0, 1, 2},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != want[i][j] {
				t.Errorf("cell (%d,%d) = %d, want %d", i, j, m.At(i, j), want[i][j])
			}
		}
	}
	if m.Total != 24 {
		t.Errorf("Total = %d, want 24", m.Total)
	}
}

func TestComputeFullMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := [4]int{7, 6, 4, 3}
	data := randomGrid(rng, dims, 8)
	strides := Strides(dims)
	for _, tc := range []struct {
		origin, shape [4]int
		dirs          []Direction
	}{
		{[4]int{0, 0, 0, 0}, dims, Directions(4, 1)},
		{[4]int{1, 2, 0, 0}, [4]int{4, 3, 3, 2}, Directions(4, 1)},
		{[4]int{2, 1, 1, 1}, [4]int{3, 3, 2, 2}, Directions(3, 1)},
		{[4]int{0, 0, 0, 0}, [4]int{5, 5, 1, 1}, Directions(2, 2)},
		{[4]int{0, 0, 0, 0}, [4]int{2, 2, 2, 2}, AllDirections(4, 1)},
	} {
		got := NewFull(8)
		ComputeFull(data, strides, tc.origin, tc.shape, tc.dirs, got)
		want := refCompute(data, strides, tc.origin, tc.shape, tc.dirs, 8)
		if got.Total != want.Total {
			t.Fatalf("origin %v shape %v: Total %d vs %d", tc.origin, tc.shape, got.Total, want.Total)
		}
		for i := range got.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("origin %v shape %v: cell %d differs", tc.origin, tc.shape, i)
			}
		}
	}
}

// Property: ComputeFull and ComputeSparse agree cell-for-cell on random
// ROIs, and both match PairCount.
func TestComputeFullSparseAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [4]int{3 + rng.Intn(5), 3 + rng.Intn(5), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		g := 2 + rng.Intn(14)
		data := randomGrid(rng, dims, g)
		strides := Strides(dims)
		var origin, shape [4]int
		for k := 0; k < 4; k++ {
			shape[k] = 1 + rng.Intn(dims[k])
			origin[k] = rng.Intn(dims[k] - shape[k] + 1)
		}
		ndim := 4
		if shape[3] == 1 {
			ndim = 3
		}
		dirs := Directions(ndim, 1)

		full := NewFull(g)
		ComputeFull(data, strides, origin, shape, dirs, full)
		sp := NewSparse(g)
		ComputeSparse(data, strides, origin, shape, dirs, sp)
		if sp.Validate() != nil || sp.Total != full.Total {
			return false
		}
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				if sp.At(i, j) != full.At(i, j) {
					return false
				}
			}
		}
		return full.Total == 2*PairCount(shape, dirs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: accumulating a direction and its negation separately gives
// exactly twice the matrix of the canonical direction alone (paper §3:
// opposite angles yield the same co-occurrence matrix).
func TestOppositeDirectionsProperty(t *testing.T) {
	f := func(seed int64, dirIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := [4]int{5, 5, 3, 3}
		data := randomGrid(rng, dims, 6)
		strides := Strides(dims)
		dirs := Directions(4, 1)
		d := dirs[int(dirIdx)%len(dirs)]

		single := NewFull(6)
		ComputeFull(data, strides, [4]int{}, dims, []Direction{d}, single)
		both := NewFull(6)
		ComputeFull(data, strides, [4]int{}, dims, []Direction{d, d.Neg()}, both)
		if both.Total != 2*single.Total {
			return false
		}
		for i := range single.Counts {
			if both.Counts[i] != 2*single.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComputeDegenerateROI(t *testing.T) {
	dims := [4]int{4, 4, 1, 1}
	data := make([]uint8, 16)
	m := NewFull(4)
	// Direction larger than the ROI: no pairs at all.
	ComputeFull(data, Strides(dims), [4]int{}, [4]int{2, 2, 1, 1}, []Direction{{3, 0, 0, 0}}, m)
	if m.Total != 0 {
		t.Errorf("Total = %d, want 0", m.Total)
	}
	// Single-voxel ROI: no pairs for any direction.
	ComputeFull(data, Strides(dims), [4]int{1, 1, 0, 0}, [4]int{1, 1, 1, 1}, Directions(2, 1), m)
	if m.Total != 0 {
		t.Errorf("single-voxel Total = %d, want 0", m.Total)
	}
}

func TestPairCount(t *testing.T) {
	// 4×4 2D ROI, horizontal direction: 3 pairs per row × 4 rows = 12.
	n := PairCount([4]int{4, 4, 1, 1}, []Direction{{1, 0, 0, 0}})
	if n != 12 {
		t.Errorf("PairCount = %d, want 12", n)
	}
	// Diagonal on the same ROI: 3×3 = 9.
	n = PairCount([4]int{4, 4, 1, 1}, []Direction{{1, 1, 0, 0}})
	if n != 9 {
		t.Errorf("diagonal PairCount = %d, want 9", n)
	}
}

func TestStrides(t *testing.T) {
	s := Strides([4]int{4, 5, 6, 7})
	want := [4]int{1, 4, 20, 120}
	if s != want {
		t.Errorf("Strides = %v, want %v", s, want)
	}
}

func BenchmarkComputeFullROI(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dims := [4]int{32, 32, 8, 8}
	data := randomGrid(rng, dims, 32)
	strides := Strides(dims)
	dirs := Directions(4, 1)
	m := NewFull(32)
	shape := [4]int{16, 16, 3, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		ComputeFull(data, strides, [4]int{}, shape, dirs, m)
	}
}

func BenchmarkComputeSparseROI(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	dims := [4]int{32, 32, 8, 8}
	data := randomGrid(rng, dims, 32)
	strides := Strides(dims)
	dirs := Directions(4, 1)
	s := NewSparse(32)
	shape := [4]int{16, 16, 3, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		ComputeSparse(data, strides, [4]int{}, shape, dirs, s)
	}
}

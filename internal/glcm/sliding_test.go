package glcm

import (
	"math/rand"
	"reflect"
	"testing"
)

func randData(rng *rand.Rand, dims [4]int, g int) []uint8 {
	n := dims[0] * dims[1] * dims[2] * dims[3]
	d := make([]uint8, n)
	for i := range d {
		d[i] = uint8(rng.Intn(g))
	}
	return d
}

func randDirs(rng *rand.Rand) []Direction {
	switch rng.Intn(4) {
	case 0:
		return Directions(2, 1)
	case 1:
		return Directions(4, 1)
	case 2:
		return AxisDirections(4, 1)
	default:
		return Directions(3, 1+rng.Intn(2))
	}
}

// TestSlideFullMatchesRecompute slides a window along random rows and
// checks every intermediate matrix is bit-identical to a full recompute.
func TestSlideFullMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		g := 2 + rng.Intn(30)
		dims := [4]int{6 + rng.Intn(14), 4 + rng.Intn(6), 2 + rng.Intn(4), 2 + rng.Intn(4)}
		data := randData(rng, dims, g)
		strides := Strides(dims)
		dirs := randDirs(rng)
		shape := [4]int{1 + rng.Intn(5), 1 + rng.Intn(4), 1 + rng.Intn(2), 1 + rng.Intn(2)}
		stride := 1 + rng.Intn(3)
		maxX := dims[0] - shape[0]
		if maxX < stride {
			continue
		}
		origin := [4]int{0, rng.Intn(dims[1] - shape[1] + 1), rng.Intn(dims[2] - shape[2] + 1), rng.Intn(dims[3] - shape[3] + 1)}

		m := NewFull(g)
		ComputeFull(data, strides, origin, shape, dirs, m)
		for origin[0]+stride <= maxX {
			SlideFull(data, strides, origin, shape, stride, dirs, m)
			origin[0] += stride
			want := NewFull(g)
			ComputeFull(data, strides, origin, shape, dirs, want)
			if m.Total != want.Total || !reflect.DeepEqual(m.Counts, want.Counts) {
				t.Fatalf("iter %d: slide to %v diverged from recompute (total %d vs %d)", iter, origin, m.Total, want.Total)
			}
		}
	}
}

// TestSlideSparseScratchMatchesFlush slides the builder along rows and
// checks every Snapshot is bit-identical to a fresh accumulate + Flush.
func TestSlideSparseScratchMatchesFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 60; iter++ {
		g := 2 + rng.Intn(30)
		dims := [4]int{6 + rng.Intn(14), 4 + rng.Intn(6), 2 + rng.Intn(4), 2 + rng.Intn(4)}
		data := randData(rng, dims, g)
		strides := Strides(dims)
		dirs := randDirs(rng)
		shape := [4]int{2 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(2), 1 + rng.Intn(2)}
		stride := 1 + rng.Intn(2)
		maxX := dims[0] - shape[0]
		if maxX < stride {
			continue
		}
		origin := [4]int{0, rng.Intn(dims[1] - shape[1] + 1), rng.Intn(dims[2] - shape[2] + 1), rng.Intn(dims[3] - shape[3] + 1)}

		b := NewSparseBuilder(g)
		got := NewSparse(g)
		ref := NewSparseBuilder(g)
		want := NewSparse(g)
		ComputeSparseScratch(data, strides, origin, shape, dirs, b)
		b.Snapshot(got)
		for origin[0]+stride <= maxX {
			SlideSparseScratch(data, strides, origin, shape, stride, dirs, b)
			origin[0] += stride
			b.Snapshot(got)
			if err := got.Validate(); err != nil {
				t.Fatalf("iter %d: snapshot at %v invalid: %v", iter, origin, err)
			}
			ComputeSparseScratch(data, strides, origin, shape, dirs, ref)
			ref.Flush(want)
			if got.Total != want.Total || !reflect.DeepEqual(got.Entries, want.Entries) {
				t.Fatalf("iter %d: sparse slide to %v diverged (total %d vs %d, %d vs %d entries)",
					iter, origin, got.Total, want.Total, len(got.Entries), len(want.Entries))
			}
		}
		// A cleared builder must start the next row from scratch.
		b.Clear()
		ComputeSparseScratch(data, strides, [4]int{0, 0, 0, 0}, shape, dirs, b)
		b.Snapshot(got)
		ComputeSparseScratch(data, strides, [4]int{0, 0, 0, 0}, shape, dirs, ref)
		ref.Flush(want)
		if got.Total != want.Total || !reflect.DeepEqual(got.Entries, want.Entries) {
			t.Fatalf("iter %d: builder Clear left residue", iter)
		}
	}
}

func TestReusable(t *testing.T) {
	dirs := Directions(4, 1)
	if !Reusable([4]int{16, 16, 3, 3}, 1, dirs) {
		t.Error("paper ROI with stride 1 should be reusable")
	}
	if Reusable([4]int{16, 16, 3, 3}, 16, dirs) {
		t.Error("stride equal to the ROI x extent reuses nothing")
	}
	if Reusable([4]int{1, 8, 3, 3}, 1, dirs) {
		t.Error("x extent 1 leaves no pair box wider than the stride")
	}
	if Reusable([4]int{16, 16, 3, 3}, 0, dirs) {
		t.Error("non-positive stride is not a slide")
	}
}

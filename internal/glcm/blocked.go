package glcm

import (
	"math"
	"slices"
	"sync"
)

// This file contains the cache-blocked, direction-batched accumulation
// kernel — the production hot path for parallel scans. It restructures the
// per-direction kernels of compute.go/sliding.go around three ideas the CUDA
// GLCM literature gets its wins from, all of which translate to Go:
//
//   - Direction batching: all canonical directions accumulate into one
//     private scratch per raster pass over the ROI. Each direction's
//     validity along x/y/z/t is a contiguous interval precomputed at plan
//     time, so the accumulation loop is a branch-free interval sweep per
//     direction over an L1-resident ROI, and the incremental slide is
//     compiled into a flat pair program (precomputed offset arrays) with no
//     per-row dispatch at all.
//
//   - Privatized asymmetric scratch: pairs are accumulated into a private
//     dense histogram with a single write per pair — scratch[a·G+c] counts
//     the pair as observed, without the mirror write or the per-pair Total
//     update of Full.Add. The scratch is split into two banks and the hot
//     loops alternate banks between consecutive pairs: smooth images hit
//     the same cell repeatedly, and alternation breaks the resulting
//     store-to-load dependency chain (uint32 addition is mod 2^32, so bank
//     assignment — including transient per-bank underflow during slides —
//     cannot change the merged sum). The symmetric matrix the rest of the
//     system expects is produced once per ROI by a merging snapshot that
//     folds the banks and the two mirror cells together with additive row
//     decoding (no '/' or '%'). The snapshot also derives the sparse entry
//     list directly from the scratch scan, eliminating the touched-key
//     bookkeeping (two data-dependent branches per pair) of SparseBuilder
//     entirely.
//
//   - Quantization lookup table: the row-base product a·G is read from a
//     256-entry LUT filled once per kernel, so the inner loop performs no
//     multiplies. The LUT is exact (mul[v] = v·G), so out-of-range gray
//     levels still panic on the scratch bounds check exactly like the
//     legacy kernels.
//
// The inner loops are written flat over precomputed neighbor strides with
// slice headers re-sliced to a common length so the compiler's bounds-check
// elimination fires for the voxel and LUT loads (verified with
// -gcflags=-d=ssa/check_bce; the scratch store keeps its check because its
// index is data-dependent — same as the legacy kernels). All counts are
// integers, so every snapshot is bit-identical to the legacy kernels'
// output; the sequential workers=1 path never uses this file and remains
// the verification oracle.

// dirPlan is one direction's precomputed geometry: the neighbor offset and
// the valid pair-anchor interval per coordinate (from pairBounds).
type dirPlan struct {
	off    int    // flat offset to the d-neighbor (strides[0] == 1)
	lo, hi [4]int // anchor bounds per coordinate: anchor and neighbor in the ROI
}

// Blocked is the blocked kernel's reusable state: the asymmetric scratch
// histogram, the multiplication LUT, the per-scan direction plan, and the
// compiled slide program. A Blocked is built for one gray-level count and
// planned for one (strides, ROI shape, direction set, stride) geometry;
// Accumulate/Slide/Snapshot may then be called for any number of ROIs.
// Values are pooled across chunks via GetBlocked/PutBlocked. Not safe for
// concurrent use — each worker owns one.
type Blocked struct {
	g      int
	counts []uint32 // 2 banks of G×G asymmetric scratch: counts[b*g*g+a*g+c] pairs observed as (a, c)
	mul    []uint16 // mul[v] = v*g, 256 entries ((g-1)*g+255 fits uint16 at g=256)
	pairs  uint64   // pairs currently accumulated (matrix Total is 2·pairs)

	strides [4]int
	shape   [4]int
	block   int // x-tile width for accumulation runs; 0 = whole row
	plans   []dirPlan

	// The compiled slide program, grouped by anchor voxel: group gi of the
	// departing slab pairs anchor data[base+subAnchor[gi]] against neighbors
	// data[base+subNbr[j]] for j in [subStart[gi], subStart[gi+1]), all
	// offsets relative to the pre-slide origin (likewise add* for the
	// entering slab). A slab voxel pairs with every direction valid in its
	// row, so grouping lets one anchor load and one LUT lookup serve the
	// whole direction batch. Built once per Plan, replayed as flat loops —
	// the slide touches only tiny per-row slabs, so loop-nest and dispatch
	// overhead would otherwise dominate it.
	subAnchor, subStart, subNbr []int32
	addAnchor, addStart, addNbr []int32
	pk                          []int64 // plan-time pair gathering scratch
}

// NewBlocked returns an unplanned blocked kernel for g gray levels.
func NewBlocked(g int) *Blocked {
	if g < 1 || g > 256 {
		panic("glcm: gray levels must be in [1, 256]")
	}
	k := &Blocked{g: g, counts: make([]uint32, 2*g*g), mul: make([]uint16, 256)}
	for v := range k.mul {
		k.mul[v] = uint16(v * g)
	}
	return k
}

// G returns the kernel's gray-level count.
func (k *Blocked) G() int { return k.g }

// Pairs returns the number of voxel pairs currently accumulated.
func (k *Blocked) Pairs() uint64 { return k.pairs }

// Plan prepares the kernel for scans of ROIs with the given shape on a grid
// with the given strides, accumulating the given directions, sliding by
// stride voxels along x. block bounds the x extent of each accumulation run
// (0 disables tiling); it only matters for ROIs whose rows outgrow L1.
//
// Plan reports whether the geometry is supported: the grid must be laid out
// x-fastest (strides[0] == 1, which every volume/chunk view in this system
// is), the flat voxel offsets must fit the program's int32 entries, and the
// direction set must be no larger than the canonical families (oversized
// sets gain nothing from batching). When it returns false the caller falls
// back to the legacy kernels, which accept anything.
func (k *Blocked) Plan(strides, shape [4]int, dirs []Direction, stride, block int) bool {
	if strides[0] != 1 || stride < 1 || block < 0 || len(dirs) > 64 {
		return false
	}
	k.strides = strides
	k.shape = shape
	k.block = block
	k.plans = k.plans[:0]
	sy, sz, st := strides[1], strides[2], strides[3]
	sub, add := k.pk[:0], []int64(nil)
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue // no valid pairs; direction dropped from the plan
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		// Every program entry is a flat offset within one ROI extent; the
		// extremes bound them all.
		if maxFlat := (hi[3]-1)*st + (hi[2]-1)*sz + (hi[1]-1)*sy + hi[0] + stride; maxFlat+off > math.MaxInt32 || maxFlat > math.MaxInt32 {
			return false
		}
		k.plans = append(k.plans, dirPlan{off: off, lo: lo, hi: hi})
		subLo, subHi, addLo, addHi := slabX(lo[0], hi[0], stride)
		for t := lo[3]; t < hi[3]; t++ {
			rt := t * st
			for z := lo[2]; z < hi[2]; z++ {
				rz := rt + z*sz
				for y := lo[1]; y < hi[1]; y++ {
					row := rz + y*sy
					for x := subLo; x < subHi; x++ {
						sub = append(sub, int64(row+x)<<32|int64(row+x+off))
					}
					for x := addLo; x < addHi; x++ {
						add = append(add, int64(row+x)<<32|int64(row+x+off))
					}
				}
			}
		}
	}
	// Both halves of the program share the gathering scratch: sub occupies
	// the front, add the back.
	k.pk = append(sub, add...)
	if len(k.pk) > math.MaxInt32 {
		return false
	}
	add = k.pk[len(sub):]
	sub = k.pk[:len(sub)]
	k.subAnchor, k.subStart, k.subNbr = compilePairs(sub, k.subAnchor, k.subStart, k.subNbr)
	k.addAnchor, k.addStart, k.addNbr = compilePairs(add, k.addAnchor, k.addStart, k.addNbr)
	return true
}

// compilePairs turns gathered (anchor, neighbor) offset pairs — packed
// anchor<<32|neighbor, both non-negative — into the grouped program form:
// sorted unique anchors, a CSR-style start index, and the flat neighbor
// list. The three slices are rebuilt in place, reusing their capacity.
func compilePairs(pk []int64, anchor, start, nbr []int32) ([]int32, []int32, []int32) {
	slices.Sort(pk)
	anchor, start, nbr = anchor[:0], start[:0], nbr[:0]
	prev := int32(-1)
	for _, p := range pk {
		a := int32(p >> 32)
		if a != prev {
			anchor = append(anchor, a)
			start = append(start, int32(len(nbr)))
			prev = a
		}
		nbr = append(nbr, int32(uint32(p)))
	}
	start = append(start, int32(len(nbr)))
	return anchor, start, nbr
}

// Reset discards all accumulated pairs. The plan is retained.
func (k *Blocked) Reset() {
	clear(k.counts)
	k.pairs = 0
}

// addRun accumulates n consecutive pairs — voxels data[i0:i0+n] against
// neighbors data[j0:j0+n] — into the scratch, one write per pair,
// alternating banks. The slice headers are cut to a common length so the
// voxel and LUT loads are bounds-check free; the scratch store keeps its
// check (data-dependent index), which is also what makes an out-of-range
// gray level panic. Only the tiled accumulation path pays the call — the
// untiled path inlines the same loop.
func (k *Blocked) addRun(data []uint8, i0, j0, n int) {
	av := data[i0 : i0+n]
	cv := data[j0 : j0+n]
	cv = cv[:len(av)]
	gg := k.g * k.g
	c0, c1 := k.counts[:gg], k.counts[gg:]
	mul := k.mul[:256]
	for len(av) >= 2 && len(cv) >= 2 {
		c0[int(mul[av[0]])+int(cv[0])]++
		c1[int(mul[av[1]])+int(cv[1])]++
		av, cv = av[2:], cv[2:]
	}
	if len(av) >= 1 && len(cv) >= 1 {
		c0[int(mul[av[0]])+int(cv[0])]++
	}
}

// Accumulate rasters the ROI at flat offset base once, accumulating every
// planned direction's pairs: per direction, a branch-free interval sweep
// over its valid rows, each row one flat x run against the neighbor stride.
// The ROI rows stay L1-resident across the per-direction sweeps.
func (k *Blocked) Accumulate(data []uint8, base int) {
	sy, sz, st := k.strides[1], k.strides[2], k.strides[3]
	block := k.block
	gg := k.g * k.g
	c0, c1 := k.counts[:gg], k.counts[gg:]
	mul := k.mul[:256]
	for pi := range k.plans {
		p := &k.plans[pi]
		off := p.off
		lo0 := p.lo[0]
		w := p.hi[0] - lo0
		rows := 0
		for t := p.lo[3]; t < p.hi[3]; t++ {
			rt := base + t*st
			for z := p.lo[2]; z < p.hi[2]; z++ {
				rz := rt + z*sz
				for y := p.lo[1]; y < p.hi[1]; y++ {
					i0 := rz + y*sy + lo0
					if block > 0 {
						for x0 := 0; x0 < w; x0 += block {
							k.addRun(data, i0+x0, i0+x0+off, min(block, w-x0))
						}
					} else {
						av := data[i0 : i0+w]
						cv := data[i0+off : i0+off+w]
						cv = cv[:len(av)]
						for len(av) >= 2 && len(cv) >= 2 {
							c0[int(mul[av[0]])+int(cv[0])]++
							c1[int(mul[av[1]])+int(cv[1])]++
							av, cv = av[2:], cv[2:]
						}
						if len(av) >= 1 && len(cv) >= 1 {
							c0[int(mul[av[0]])+int(cv[0])]++
						}
					}
					rows++
				}
			}
		}
		k.pairs += uint64(w) * uint64(rows)
	}
}

// Slide updates the scratch — which must hold the pairs of the ROI at flat
// offset base — to hold the pairs of the ROI slid by the planned stride
// along x, by replaying the compiled pair program: one grouped loop removes
// the departing slab's pairs, one adds the entering slab's, with each
// group's anchor voxel loaded and LUT-translated once for its whole
// direction batch. The slabs have equal width, so the pair total is
// invariant. Exact integer update: the result is bit-identical to Reset +
// Accumulate at the new origin.
func (k *Blocked) Slide(data []uint8, base int) {
	gg := k.g * k.g
	c0, c1 := k.counts[:gg], k.counts[gg:]
	mul := k.mul[:256]
	// Rebase once so the hot loops index the program offsets directly.
	dd := data[base:]

	starts, nbrs := k.subStart, k.subNbr
	for gi, a := range k.subAnchor {
		ma := int(mul[dd[a]])
		grp := nbrs[starts[gi]:starts[gi+1]]
		for len(grp) >= 2 {
			c0[ma+int(dd[grp[0]])]--
			c1[ma+int(dd[grp[1]])]--
			grp = grp[2:]
		}
		if len(grp) >= 1 {
			c0[ma+int(dd[grp[0]])]--
		}
	}

	starts, nbrs = k.addStart, k.addNbr
	for gi, a := range k.addAnchor {
		ma := int(mul[dd[a]])
		grp := nbrs[starts[gi]:starts[gi+1]]
		for len(grp) >= 2 {
			c0[ma+int(dd[grp[0]])]++
			c1[ma+int(dd[grp[1]])]++
			grp = grp[2:]
		}
		if len(grp) >= 1 {
			c0[ma+int(dd[grp[0]])]++
		}
	}
}

// SnapshotFull merges the asymmetric scratch into m, replacing its contents
// with the symmetric dense matrix: cell (i, j) = scratch(i, j) +
// scratch(j, i) for i ≠ j and 2·scratch(i, i) on the diagonal — exactly the
// counts the mirror-writing kernels would have produced. Row indexes are
// carried additively; the scratch is retained so sliding can continue.
func (k *Blocked) SnapshotFull(m *Full) {
	if m.G != k.g {
		panic("glcm: snapshot into a matrix of different gray-level count")
	}
	g := k.g
	gg := g * g
	c0, c1 := k.counts[:gg], k.counts[gg:]
	out := m.Counts
	for i, ri := 0, 0; i < g; i, ri = i+1, ri+g {
		r0 := c0[ri : ri+g]
		r1 := c1[ri : ri+g]
		r1 = r1[:len(r0)]
		rowO := out[ri : ri+g]
		rowO[i] = 2 * (r0[i] + r1[i])
		for j, ji := i+1, ri+g+i; j < g; j, ji = j+1, ji+g {
			c := r0[j] + r1[j] + c0[ji] + c1[ji]
			rowO[j] = c
			out[ji] = c
		}
	}
	m.Total = 2 * k.pairs
}

// SnapshotSparse extracts the sparse matrix from the scratch, replacing s's
// contents: one (i ≤ j)-ordered scan over the scratch emits the non-zero
// merged cells directly, already sorted, with no touched-key tracking or
// key division. The scratch is retained so sliding can continue.
func (k *Blocked) SnapshotSparse(s *Sparse) {
	g := k.g
	gg := g * g
	s.Reset()
	s.G = g
	c0, c1 := k.counts[:gg], k.counts[gg:]
	for i, ri := 0, 0; i < g; i, ri = i+1, ri+g {
		r0 := c0[ri : ri+g]
		r1 := c1[ri : ri+g]
		r1 = r1[:len(r0)]
		if c := r0[i] + r1[i]; c != 0 {
			s.Entries = append(s.Entries, Entry{I: uint8(i), J: uint8(i), Count: 2 * c})
		}
		for j, ji := i+1, ri+g+i; j < g; j, ji = j+1, ji+g {
			if c := r0[j] + r1[j] + c0[ji] + c1[ji]; c != 0 {
				s.Entries = append(s.Entries, Entry{I: uint8(i), J: uint8(j), Count: c})
			}
		}
	}
	s.Total = 2 * k.pairs
}

// blockedPool recycles kernels — and with them the large G×G scratch
// histograms and compiled slide programs — across chunks and workers
// instead of reallocating per scan.
var blockedPool sync.Pool

// GetBlocked returns a pooled kernel for g gray levels (allocating one when
// the pool is empty or holds a kernel of a different size). The kernel's
// scratch is zeroed; Plan must be called before use.
func GetBlocked(g int) *Blocked {
	if v := blockedPool.Get(); v != nil {
		k := v.(*Blocked)
		if k.g == g {
			k.Reset()
			return k
		}
	}
	return NewBlocked(g)
}

// PutBlocked returns a kernel to the pool for reuse.
func PutBlocked(k *Blocked) {
	if k != nil {
		blockedPool.Put(k)
	}
}

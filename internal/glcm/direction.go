// Package glcm implements gray-level co-occurrence matrices (GLCMs) for
// texture analysis in up to four dimensions (x, y, z, t), in the two storage
// representations studied by the paper: a dense G×G "full" matrix and a
// compact "sparse" list of non-zero entries.
//
// A co-occurrence matrix is the joint histogram of the gray levels of voxel
// pairs separated by a fixed displacement vector. Following Haralick, pairs
// are counted in both the forward and backward directions, so the matrix is
// symmetric and opposite displacement vectors yield the same matrix; only
// the canonical half of the direction set is therefore enumerated.
package glcm

// Direction is a 4D displacement vector (dx, dy, dz, dt) between a voxel and
// its neighbor. Lower-dimensional analyses simply leave trailing components
// zero.
type Direction [4]int

// Neg returns the opposite direction.
func (d Direction) Neg() Direction {
	return Direction{-d[0], -d[1], -d[2], -d[3]}
}

// IsZero reports whether all components are zero.
func (d Direction) IsZero() bool {
	return d[0] == 0 && d[1] == 0 && d[2] == 0 && d[3] == 0
}

// Canonical reports whether the direction is the canonical representative of
// the pair {d, −d}: the first non-zero component is positive. The symmetric
// accumulation makes d and −d produce identical matrices (paper §3), so only
// canonical directions need to be enumerated.
func (d Direction) Canonical() bool {
	for _, c := range d {
		if c > 0 {
			return true
		}
		if c < 0 {
			return false
		}
	}
	return false // zero vector is not canonical
}

// Directions returns the canonical unique direction set for an ndim-
// dimensional analysis at the given distance: every vector in
// {−distance, 0, +distance}^ndim whose first non-zero component is positive.
//
// Counts match the paper's discussion: 4 unique directions in 2D (out of 8),
// 13 in 3D (out of 26), and 40 in 4D (out of 80).
//
// ndim must be between 1 and 4 and distance must be positive; otherwise the
// function panics, since both are programmer-supplied configuration.
func Directions(ndim, distance int) []Direction {
	if ndim < 1 || ndim > 4 {
		panic("glcm: ndim must be in [1, 4]")
	}
	if distance < 1 {
		panic("glcm: distance must be >= 1")
	}
	var dirs []Direction
	for _, d := range AllDirections(ndim, distance) {
		if d.Canonical() {
			dirs = append(dirs, d)
		}
	}
	return dirs
}

// AllDirections returns the complete direction set (both orientations),
// i.e. {−distance, 0, +distance}^ndim minus the zero vector: 8 vectors in
// 2D, 26 in 3D, 80 in 4D.
func AllDirections(ndim, distance int) []Direction {
	if ndim < 1 || ndim > 4 {
		panic("glcm: ndim must be in [1, 4]")
	}
	if distance < 1 {
		panic("glcm: distance must be >= 1")
	}
	steps := []int{-distance, 0, distance}
	var dirs []Direction
	var build func(dim int, cur Direction)
	build = func(dim int, cur Direction) {
		if dim == ndim {
			if !cur.IsZero() {
				dirs = append(dirs, cur)
			}
			return
		}
		for _, s := range steps {
			cur[dim] = s
			build(dim+1, cur)
		}
		cur[dim] = 0
	}
	build(0, Direction{})
	return dirs
}

// AxisDirections returns the ndim canonical axis-aligned directions at the
// given distance (e.g. (d,0,0,0), (0,d,0,0), ...). Useful for cheap
// single-direction or axis-only analyses.
func AxisDirections(ndim, distance int) []Direction {
	if ndim < 1 || ndim > 4 {
		panic("glcm: ndim must be in [1, 4]")
	}
	if distance < 1 {
		panic("glcm: distance must be >= 1")
	}
	dirs := make([]Direction, ndim)
	for i := 0; i < ndim; i++ {
		dirs[i][i] = distance
	}
	return dirs
}

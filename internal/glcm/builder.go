package glcm

import "slices"

// SparseBuilder accumulates voxel pairs into a dense scratch array with a
// touched-key list and extracts the sorted sparse triples at flush time.
//
// This is the production build strategy for the sparse representation: the
// hot accumulation loop costs almost the same as the dense build (one extra
// zero test per pair), and the sparse-specific overhead — tracking touched
// cells, sorting them and extracting the entries — is paid once per matrix
// instead of once per pair. The scratch is G·G uint32s (4 KiB at G=32),
// reused across matrices; what is stored and transmitted is still only the
// sparse triple list. Compare ComputeSparse, the direct sorted-insertion
// builder kept for the build-strategy ablation.
type SparseBuilder struct {
	g       int
	counts  []uint32
	touched []uint16 // packed keys i*g+j with i <= j, in first-touch order
	total   uint64
}

// NewSparseBuilder returns a builder for g gray levels.
func NewSparseBuilder(g int) *SparseBuilder {
	if g < 1 || g > 256 {
		panic("glcm: gray levels must be in [1, 256]")
	}
	return &SparseBuilder{g: g, counts: make([]uint32, g*g)}
}

// G returns the builder's gray-level count.
func (b *SparseBuilder) G() int { return b.g }

// Add records one voxel pair, with the same counting convention as
// Sparse.Add. Both mirror cells are accumulated exactly as in the dense
// build — the per-pair path has no data-dependent branches (they would
// mispredict on noisy images); normalization to i ≤ j happens at flush.
func (b *SparseBuilder) Add(x, y uint8) {
	k1 := int(x)*b.g + int(y)
	k2 := int(y)*b.g + int(x)
	if b.counts[k1] == 0 {
		b.touched = append(b.touched, uint16(k1))
	}
	b.counts[k1]++
	if b.counts[k2] == 0 {
		b.touched = append(b.touched, uint16(k2))
	}
	b.counts[k2]++
	b.total += 2
}

// Flush extracts the accumulated matrix into s (replacing its contents) and
// resets the builder for the next matrix. Only touched cells are visited,
// so flushing costs O(entries·log entries), not O(G²).
func (b *SparseBuilder) Flush(s *Sparse) {
	slices.Sort(b.touched) // allocation-free, O(k log k) on the touched keys
	s.Reset()
	if cap(s.Entries) < len(b.touched) {
		s.Entries = make([]Entry, 0, len(b.touched))
	}
	// The keys are sorted, so the row index is decoded additively: advance
	// rowBase by G while the key has left the current row — no '/' or '%'.
	rowBase, row := 0, uint8(0)
	for _, k := range b.touched {
		for int(k) >= rowBase+b.g {
			rowBase += b.g
			row++
		}
		j := uint8(int(k) - rowBase)
		if row <= j { // the mirror cell (j, i) carries the same count
			s.Entries = append(s.Entries, Entry{I: row, J: j, Count: b.counts[k]})
		}
		b.counts[k] = 0
	}
	s.Total = b.total
	b.touched = b.touched[:0]
	b.total = 0
}

// Snapshot extracts the accumulated matrix into s (replacing its contents)
// like Flush, but keeps the builder's state so that accumulation can
// continue — the extraction point of the sliding-window kernel, which
// carries the builder across an ROI row. Touched keys whose count has been
// driven back to zero by slab subtraction are compacted away, restoring the
// invariant that every touched key has a non-zero count.
func (b *SparseBuilder) Snapshot(s *Sparse) {
	slices.Sort(b.touched)
	s.Reset()
	s.G = b.g
	if cap(s.Entries) < len(b.touched) {
		s.Entries = make([]Entry, 0, len(b.touched))
	}
	w := 0
	rowBase, row := 0, uint8(0) // additive row decode over the sorted keys
	for _, k := range b.touched {
		c := b.counts[k]
		if c == 0 {
			continue // zeroed by a slide subtraction; drop from the list
		}
		b.touched[w] = k
		w++
		for int(k) >= rowBase+b.g {
			rowBase += b.g
			row++
		}
		j := uint8(int(k) - rowBase)
		if row <= j { // the mirror cell (j, i) carries the same count
			s.Entries = append(s.Entries, Entry{I: row, J: j, Count: c})
		}
	}
	b.touched = b.touched[:w]
	s.Total = b.total
}

// Clear discards the accumulated state (counts, touched keys, total) so the
// builder can start an unrelated matrix, at O(touched) cost. Needed when a
// sliding-window row ends: Snapshot retains the counts, so the next row
// must not inherit them.
func (b *SparseBuilder) Clear() {
	for _, k := range b.touched {
		b.counts[k] = 0
	}
	b.touched = b.touched[:0]
	b.total = 0
}

// ComputeSparseScratch accumulates the same pair set as ComputeFull into the
// builder (call Flush afterwards to obtain the Sparse matrix). This is the
// accumulation kernel used by the texture filters for the sparse
// representation.
func ComputeSparseScratch(data []uint8, strides, origin, shape [4]int, dirs []Direction, b *SparseBuilder) {
	g := b.g
	counts := b.counts
	var added uint64
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		base := origin[0]*strides[0] + origin[1]*strides[1] + origin[2]*strides[2] + origin[3]*strides[3]
		for t := lo[3]; t < hi[3]; t++ {
			it := base + t*strides[3]
			for z := lo[2]; z < hi[2]; z++ {
				iz := it + z*strides[2]
				for y := lo[1]; y < hi[1]; y++ {
					iy := iz + y*strides[1]
					i0 := iy + lo[0]*strides[0]
					for x := lo[0]; x < hi[0]; x++ {
						a := data[i0]
						c := data[i0+off]
						i0 += strides[0]
						k1 := int(a)*g + int(c)
						k2 := int(c)*g + int(a)
						if counts[k1] == 0 {
							b.touched = append(b.touched, uint16(k1))
						}
						counts[k1]++
						if counts[k2] == 0 {
							b.touched = append(b.touched, uint16(k2))
						}
						counts[k2]++
						added += 2
					}
				}
			}
		}
	}
	b.total += added
}

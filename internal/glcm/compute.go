package glcm

// This file contains the accumulation kernels that raster a region of
// interest (ROI) of a requantized 4D grid into a co-occurrence matrix.
//
// The grid is addressed through explicit strides so the same kernels work on
// whole volumes and on chunk sub-views without copying. For each direction
// d, only the sub-box of the ROI whose d-neighbor also falls inside the ROI
// is visited, which removes all per-voxel boundary branches from the inner
// loop. Both the voxel and its neighbor must lie inside the ROI: the ROI is
// the complete statistical unit in the paper's raster-scan formulation.

// ComputeFull accumulates all voxel pairs of the ROI at origin with the
// given shape (both in grid coordinates) into the dense matrix m, one pass
// per direction. The matrix is NOT reset first, so multi-ROI or multi-pass
// accumulation is possible; call m.Reset() between independent ROIs.
func ComputeFull(data []uint8, strides, origin, shape [4]int, dirs []Direction, m *Full) {
	g := m.G
	counts := m.Counts
	var added uint64
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		base := origin[0]*strides[0] + origin[1]*strides[1] + origin[2]*strides[2] + origin[3]*strides[3]
		for t := lo[3]; t < hi[3]; t++ {
			it := base + t*strides[3]
			for z := lo[2]; z < hi[2]; z++ {
				iz := it + z*strides[2]
				for y := lo[1]; y < hi[1]; y++ {
					iy := iz + y*strides[1]
					i0 := iy + lo[0]*strides[0]
					for x := lo[0]; x < hi[0]; x++ {
						a := data[i0]
						b := data[i0+off]
						counts[int(a)*g+int(b)]++
						counts[int(b)*g+int(a)]++
						added += 2
						i0 += strides[0]
					}
				}
			}
		}
	}
	m.Total += added
}

// ComputeSparse accumulates the same pair set as ComputeFull directly into
// the sparse representation. The common case (the gray pair already has an
// entry) is inlined against the builder index; only genuinely new cells take
// the slow sorted-insertion path. This keeps the sparse build within a small
// factor of the dense build — the residual overhead is what the paper found
// to be a net loss in the combined HMP filter but a net win for the split
// HCC→HPC configuration (smaller messages).
func ComputeSparse(data []uint8, strides, origin, shape [4]int, dirs []Direction, s *Sparse) {
	s.ensureIndex()
	g := s.G
	var added uint64
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		off := d[0]*strides[0] + d[1]*strides[1] + d[2]*strides[2] + d[3]*strides[3]
		base := origin[0]*strides[0] + origin[1]*strides[1] + origin[2]*strides[2] + origin[3]*strides[3]
		index := s.index
		entries := s.Entries // refreshed after any insertion
		for t := lo[3]; t < hi[3]; t++ {
			it := base + t*strides[3]
			for z := lo[2]; z < hi[2]; z++ {
				iz := it + z*strides[2]
				for y := lo[1]; y < hi[1]; y++ {
					iy := iz + y*strides[1]
					i0 := iy + lo[0]*strides[0]
					for x := lo[0]; x < hi[0]; x++ {
						a := data[i0]
						b := data[i0+off]
						i0 += strides[0]
						var inc uint32 = 1
						if a == b {
							inc = 2
						} else if a > b {
							a, b = b, a
						}
						if at := index[int(a)*g+int(b)]; at != 0 {
							entries[at-1].Count += inc
							added += 2
							continue
						}
						s.insertNew(a, b, inc)
						entries = s.Entries
						added += 2
					}
				}
			}
		}
	}
	s.Total += added
}

// pairBounds returns the half-open coordinate ranges [lo, hi) within an ROI
// of the given shape such that for every voxel v in the box, v+d is also
// inside the ROI. ok is false when the direction leaves no valid pairs
// (|d| ≥ shape along some dimension).
func pairBounds(shape [4]int, d Direction) (lo, hi [4]int, ok bool) {
	for k := 0; k < 4; k++ {
		lo[k] = 0
		hi[k] = shape[k]
		if d[k] > 0 {
			hi[k] = shape[k] - d[k]
		} else if d[k] < 0 {
			lo[k] = -d[k]
		}
		if lo[k] >= hi[k] {
			return lo, hi, false
		}
	}
	return lo, hi, true
}

// PairCount returns the number of voxel pairs an ROI of the given shape
// contributes across the direction set — the exact work per co-occurrence
// matrix. Used by cost models and tests.
func PairCount(shape [4]int, dirs []Direction) uint64 {
	var n uint64
	for _, d := range dirs {
		lo, hi, ok := pairBounds(shape, d)
		if !ok {
			continue
		}
		m := uint64(1)
		for k := 0; k < 4; k++ {
			m *= uint64(hi[k] - lo[k])
		}
		n += m
	}
	return n
}

// Strides returns the flat-index strides for a grid with the given
// dimensions laid out x-fastest: offset = x + X·(y + Y·(z + Z·t)).
func Strides(dims [4]int) [4]int {
	return [4]int{1, dims[0], dims[0] * dims[1], dims[0] * dims[1] * dims[2]}
}

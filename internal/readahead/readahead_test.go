package readahead

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderPreserved checks that results arrive in index order for every
// depth, even when fetch completion order is scrambled.
func TestOrderPreserved(t *testing.T) {
	const n = 64
	for _, depth := range []int{0, 1, 2, 3, 8, n, 2 * n} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			fetch := func(i int) (int, error) {
				// Earlier indices sleep longer so out-of-order completion is
				// the common case, not a lucky schedule.
				time.Sleep(time.Duration((n-i)%7) * time.Millisecond / 4)
				return i * i, nil
			}
			r := New(fetch, n, depth)
			defer r.Close()
			for i := 0; i < n; i++ {
				v, err, ok := r.Next()
				if !ok || err != nil {
					t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
				}
				if v != i*i {
					t.Fatalf("Next %d = %d, want %d (out of order)", i, v, i*i)
				}
			}
			if _, _, ok := r.Next(); ok {
				t.Fatal("Next returned ok after the stream ended")
			}
		})
	}
}

// TestSynchronousInline checks the depth ≤ 0 contract: every fetch runs
// inline on the caller's goroutine in strict sequence, with no prefetching —
// the bit-for-bit reproduction of the pre-readahead reader loop.
func TestSynchronousInline(t *testing.T) {
	var calls []int
	fetch := func(i int) (int, error) {
		calls = append(calls, i) // unsynchronized: must be single-goroutine
		return i, nil
	}
	r := New(fetch, 5, 0)
	defer r.Close()
	for i := 0; i < 3; i++ {
		if _, err, ok := r.Next(); err != nil || !ok {
			t.Fatal(err)
		}
		// Nothing may be fetched beyond what was consumed.
		if len(calls) != i+1 {
			t.Fatalf("after %d Next calls, %d fetches ran", i+1, len(calls))
		}
	}
}

// TestBound checks that at most depth fetches are outstanding when the
// consumer stops consuming.
func TestBound(t *testing.T) {
	const n, depth = 100, 3
	var started atomic.Int64
	release := make(chan struct{})
	fetch := func(i int) (int, error) {
		started.Add(1)
		<-release
		return i, nil
	}
	r := New(fetch, n, depth)
	defer r.Close()
	// Without any Next call, the dispatcher can queue at most depth slots.
	deadline := time.Now().Add(time.Second)
	for started.Load() < depth && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give an unbounded bug time to show
	if got := started.Load(); got != depth {
		t.Fatalf("%d fetches outstanding with no consumer, want %d", got, depth)
	}
	close(release)
}

// TestErrorPropagation checks a fetch error surfaces at the failing index.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, depth := range []int{0, 4} {
		fetch := func(i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		}
		r := New(fetch, 10, depth)
		for i := 0; i < 6; i++ {
			_, err, ok := r.Next()
			if !ok {
				t.Fatalf("depth %d: stream ended at %d", depth, i)
			}
			if (err != nil) != (i == 5) || (i == 5 && !errors.Is(err, boom)) {
				t.Fatalf("depth %d index %d: err = %v", depth, i, err)
			}
		}
		r.Close()
	}
}

// TestCloseMidStream aborts consumption partway and checks every goroutine
// the reader started exits — the readahead half of the pipeline-cancellation
// guarantee. Run with -race.
func TestCloseMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		fetch := func(i int) (int, error) {
			time.Sleep(time.Duration(i%3) * time.Millisecond / 2)
			return i, nil
		}
		r := New(fetch, 50, 4)
		for i := 0; i < trial%7; i++ {
			r.Next()
		}
		r.Close()
		r.Close() // idempotent
		if _, _, ok := r.Next(); ok {
			t.Fatal("Next succeeded after Close")
		}
	}
	// Goroutine count returns to the baseline once all pools exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%d goroutines after Close, started with %d", now, before)
	}
}

// TestGateResizeGrow checks that raising a gate's depth mid-stream lets the
// dispatcher start more outstanding fetches without rebuilding the reader —
// the live-tuning contract the autotune controller relies on.
func TestGateResizeGrow(t *testing.T) {
	const n = 100
	var started atomic.Int64
	release := make(chan struct{})
	fetch := func(i int) (int, error) {
		started.Add(1)
		<-release
		return i, nil
	}
	g := NewGate(2, 1, 16)
	r := NewGated(fetch, n, g)
	defer r.Close()
	defer close(release)

	waitFor := func(want int64) {
		deadline := time.Now().Add(2 * time.Second)
		for started.Load() < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond) // give an over-dispatch bug time to show
		if got := started.Load(); got != want {
			t.Fatalf("%d fetches outstanding, want %d (depth=%d)", got, want, g.Depth())
		}
	}
	waitFor(2)
	if d := g.Resize(8); d != 8 {
		t.Fatalf("Resize(8) = %d", d)
	}
	waitFor(8)
}

// TestGateResizeShrink checks that lowering the depth stops new dispatches
// until the surplus outstanding fetches are consumed.
func TestGateResizeShrink(t *testing.T) {
	const n = 50
	var started atomic.Int64
	fetch := func(i int) (int, error) {
		started.Add(1)
		return i, nil
	}
	g := NewGate(6, 1, 16)
	r := NewGated(fetch, n, g)
	defer r.Close()

	deadline := time.Now().Add(2 * time.Second)
	for started.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	g.Resize(2)
	// Consuming one result returns one credit; with 5 still outstanding and
	// the limit at 2, no new fetch may start.
	base := started.Load()
	if _, err, ok := r.Next(); err != nil || !ok {
		t.Fatalf("Next: err=%v ok=%v", err, ok)
	}
	time.Sleep(20 * time.Millisecond)
	if got := started.Load(); got != base {
		t.Fatalf("dispatcher started %d fetches while over the shrunken limit", got-base)
	}
	// Draining below the new limit resumes dispatch, and order still holds.
	for i := 1; i < n; i++ {
		v, err, ok := r.Next()
		if err != nil || !ok || v != i {
			t.Fatalf("Next %d = (%d, %v, %v)", i, v, err, ok)
		}
	}
}

// TestGateShared checks that two readers on one gate share its credit
// budget, and that closing one mid-stream returns its held credits so the
// survivor is not starved.
func TestGateShared(t *testing.T) {
	const n = 40
	var started atomic.Int64
	release := make(chan struct{})
	blocking := func(i int) (int, error) {
		started.Add(1)
		<-release
		return i, nil
	}
	g := NewGate(4, 1, 16)
	a := NewGated(blocking, n, g)
	b := NewGated(blocking, n, g)

	deadline := time.Now().Add(2 * time.Second)
	for started.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := started.Load(); got != 4 {
		t.Fatalf("%d fetches outstanding across two readers, want shared budget 4", got)
	}
	// Aborting reader a must hand its credits back so b can finish alone.
	// (Unblock the fetches first: Close waits for in-flight fetches, and
	// from here both readers race for credits until a is gone.)
	close(release)
	a.Close()
	for i := 0; i < n; i++ {
		v, err, ok := b.Next()
		if err != nil || !ok || v != i {
			t.Fatalf("survivor Next %d = (%d, %v, %v)", i, v, err, ok)
		}
	}
	b.Close()
}

// TestGateClamp checks construction and resize both clamp into [lo, hi].
func TestGateClamp(t *testing.T) {
	g := NewGate(0, 2, 8)
	if d := g.Depth(); d != 2 {
		t.Fatalf("NewGate(0,2,8).Depth() = %d, want 2", d)
	}
	if d := g.Resize(100); d != 8 {
		t.Fatalf("Resize(100) = %d, want 8", d)
	}
	if d := g.Resize(-3); d != 2 {
		t.Fatalf("Resize(-3) = %d, want 2", d)
	}
	if lo, hi := g.Bounds(); lo != 2 || hi != 8 {
		t.Fatalf("Bounds() = %d,%d", lo, hi)
	}
}

// BenchmarkNextSync and BenchmarkNextAsync are the readahead
// microbenchmarks run by CI's io-bench smoke step: a fetch with a small
// fixed latency, consumed with and without prefetching.
func benchNext(depth int) func(*testing.B) {
	return func(b *testing.B) {
		fetch := func(i int) (int, error) {
			time.Sleep(20 * time.Microsecond) // stand-in for one positioned read
			return i, nil
		}
		b.ResetTimer()
		for iter := 0; iter < b.N; iter++ {
			r := New(fetch, 32, depth)
			for {
				_, err, ok := r.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
			r.Close()
		}
	}
}

func BenchmarkNextSync(b *testing.B)  { benchNext(0)(b) }
func BenchmarkNextAsync(b *testing.B) { benchNext(4)(b) }

package readahead

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the Gate's behavior when Resize races live traffic — the
// situation the daemon's resource governor creates every time a job starts
// or finishes and every running job's share is re-cut in place.

// TestGateShrinkBelowInFlight pins the shrink semantics when the cut goes
// below what is already outstanding: nothing is revoked, new admissions stop
// entirely, and they resume only once the surplus drains below the new
// limit.
func TestGateShrinkBelowInFlight(t *testing.T) {
	g := NewGate(8, 1, 16)
	for i := 0; i < 8; i++ {
		if !g.acquire(nil) {
			t.Fatal("acquire within the limit blocked")
		}
	}
	if d := g.Resize(2); d != 2 {
		t.Fatalf("Resize(2) = %d", d)
	}
	admitted := make(chan bool, 1)
	go func() { admitted <- g.acquire(nil) }()
	mustBlock := func(when string) {
		t.Helper()
		select {
		case <-admitted:
			t.Fatalf("admission while at or over the shrunken limit (%s)", when)
		case <-time.After(20 * time.Millisecond):
		}
	}
	mustBlock("8 in flight, limit 2")
	g.release(6) // drains to exactly the new limit: still no free credit
	mustBlock("2 in flight, limit 2")
	g.release(1) // 1 in flight < limit 2: the waiter gets the freed credit
	select {
	case ok := <-admitted:
		if !ok {
			t.Fatal("acquire returned false with no stop close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("draining below the shrunken limit did not admit the waiter")
	}
	g.release(2)
}

// TestGateGrowWakesAllBlocked parks several acquirers on a full gate and
// grows it: every newly minted credit must be handed to a waiter, not just
// the first one the broadcast happens to wake.
func TestGateGrowWakesAllBlocked(t *testing.T) {
	g := NewGate(1, 1, 16)
	if !g.acquire(nil) {
		t.Fatal("first acquire blocked")
	}
	const waiters = 5
	admitted := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		go func() { admitted <- g.acquire(nil) }()
	}
	time.Sleep(20 * time.Millisecond) // park them on the cond
	g.Resize(1 + waiters)             // one held + one credit per waiter
	for i := 0; i < waiters; i++ {
		select {
		case ok := <-admitted:
			if !ok {
				t.Fatal("woken acquire returned false")
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d still blocked after grow", i)
		}
	}
	g.release(1 + waiters)
}

// TestGateResizeDuringDrain closes stop in the middle of a resize storm:
// every blocked acquirer must abort with false — none may stay wedged on
// the cond — and every credit must come home. (The workers also poll stop
// after each release: the fast acquire path deliberately admits without
// checking stop, so a worker that keeps winning credits would otherwise
// never observe the drain.)
func TestGateResizeDuringDrain(t *testing.T) {
	g := NewGate(2, 1, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g.acquire(stop) {
				time.Sleep(time.Millisecond)
				g.release(1)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	resizerDone := make(chan struct{})
	go func() {
		defer close(resizerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g.Resize(1 + i%8)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("an acquirer stayed wedged after stop closed mid-resize")
	}
	<-resizerDone
	g.mu.Lock()
	out := g.out
	g.mu.Unlock()
	if out != 0 {
		t.Fatalf("%d credits leaked through the drain", out)
	}
}

// TestGateConcurrentResizeStress whipsaws the limit across its whole range
// under 2x oversubscribed traffic and checks the invariant no interleaving
// may break: concurrent holders never exceed the gate's upper bound, and the
// gate is at rest when the traffic stops.
func TestGateConcurrentResizeStress(t *testing.T) {
	const hi = 8
	g := NewGate(hi, 1, hi)
	stop := make(chan struct{})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2*hi; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g.acquire(stop) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				cur.Add(-1)
				g.release(1)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		g.Resize(1 + i%hi)
	}
	close(stop)
	wg.Wait()
	if p := peak.Load(); p > hi {
		t.Fatalf("observed %d concurrent holders, upper bound is %d", p, hi)
	}
	g.mu.Lock()
	out := g.out
	g.mu.Unlock()
	if out != 0 {
		t.Fatalf("%d credits leaked through the stress run", out)
	}
}

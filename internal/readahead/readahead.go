// Package readahead provides the bounded, order-preserving prefetch stage
// the reader filters (RFR, DFR) put in front of their emit loops: a small
// worker pool runs the per-window fetch function — positioned reads plus
// uint16→gray-level decode — up to K windows ahead of the consumer, so the
// disk keeps streaming while pieces are cut and sent. This is the staging
// idea of Region Templates applied to the paper's §4.3 reader filters.
//
// The contract is deliberately strict:
//
//   - Order-preserving: Next returns fetch results in exactly the order the
//     indices 0..n-1 would be fetched sequentially, regardless of which
//     worker finishes first.
//   - Bounded: at most depth fetches are completed-but-unconsumed or in
//     flight at any moment, so window buffers in flight stay O(depth). The
//     bound is a Gate credit count, resizable while the reader streams —
//     the actuation point of the autotune controller.
//   - Synchronous degenerate case: depth ≤ 0 (and no gate) runs every fetch
//     inline on the consumer's goroutine — no worker pool, no reordering
//     window, no extra buffering — reproducing the pre-readahead reader
//     loop bit for bit.
//   - Cancellable: Close releases the workers even when the consumer stops
//     consuming mid-stream (pipeline abort); it is idempotent and safe to
//     defer alongside normal completion.
package readahead

import (
	"sync"
	"sync/atomic"
)

// Fetch produces the item for one index. Fetches run concurrently on worker
// goroutines when depth > 0, so the function must be safe for concurrent
// calls with distinct indices.
type Fetch[T any] func(index int) (T, error)

// maxWorkers caps the fixed-depth pool: the point is overlapping a handful
// of positioned reads with the emit loop, not saturating the CPU. A gated
// reader instead sizes its pool to the gate's upper bound (capped at
// maxGatedWorkers) so the gate's current depth — not the pool — is the
// sole concurrency limiter as the controller raises it.
const (
	maxWorkers      = 4
	maxGatedWorkers = 32
)

// Gate is a resizable credit counter bounding the number of outstanding
// fetches (in flight or completed-but-unconsumed). A reader's dispatcher
// takes one credit before starting each fetch and the consumer returns it
// when the result is consumed, so lowering the depth mid-stream stops new
// dispatches until the surplus drains, and raising it wakes the dispatcher
// immediately.
//
// One Gate may be shared by several readers (for example every RFR copy of
// a run), making its depth a global outstanding-window budget. All methods
// are safe for concurrent use.
type Gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int
	lo, hi int
	out    int
}

// NewGate returns a gate with the given starting depth, clamped into
// [lo, hi]. Bounds are normalized so that 1 <= lo <= hi: a zero-credit gate
// would wedge its readers forever.
func NewGate(depth, lo, hi int) *Gate {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	g := &Gate{lo: lo, hi: hi}
	g.cond = sync.NewCond(&g.mu)
	g.depth = g.clamp(depth)
	return g
}

func (g *Gate) clamp(d int) int {
	if d < g.lo {
		return g.lo
	}
	if d > g.hi {
		return g.hi
	}
	return d
}

// Depth returns the current credit limit.
func (g *Gate) Depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.depth
}

// Bounds returns the [lo, hi] resize range.
func (g *Gate) Bounds() (lo, hi int) { return g.lo, g.hi }

// Resize sets the credit limit, clamped into the gate's bounds, and returns
// the applied value. Raising the limit wakes blocked dispatchers at once;
// lowering it takes effect as outstanding fetches are consumed.
func (g *Gate) Resize(d int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.depth = g.clamp(d)
	g.cond.Broadcast()
	return g.depth
}

// acquire takes one credit, blocking while the gate is at its limit.
// It returns false without taking a credit once stop is closed.
func (g *Gate) acquire(stop <-chan struct{}) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.out < g.depth {
		g.out++
		return true
	}
	// Slow path: arm a watcher so a close of stop breaks the cond wait.
	// The watcher cannot broadcast before the first Wait releases the lock,
	// so the wake-up is never lost.
	unarmed := make(chan struct{})
	defer close(unarmed)
	go func() {
		select {
		case <-stop:
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		case <-unarmed:
		}
	}()
	for g.out >= g.depth {
		select {
		case <-stop:
			return false
		default:
		}
		g.cond.Wait()
	}
	g.out++
	return true
}

// release returns n credits.
func (g *Gate) release(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.out -= n
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Reader streams the results of fetch(0..n-1) in order, prefetching up to
// the gate's current depth indices ahead of the consumer.
type Reader[T any] struct {
	fetch Fetch[T]
	n     int
	async bool

	// Synchronous mode (depth <= 0, no gate).
	next int

	// Asynchronous mode. The dispatcher takes a gate credit per index,
	// assigns the index to a worker through jobs, and queues the index's
	// result slot into pending in index order; the consumer returns the
	// credit as it consumes each result, so the gate's depth is the
	// read-ahead bound. Closing done releases every goroutine wherever it
	// blocks.
	gate      *Gate
	held      atomic.Int64 // credits this reader holds (dispatched, unconsumed)
	pending   chan chan result[T]
	jobs      chan job[T]
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type result[T any] struct {
	v   T
	err error
}

type job[T any] struct {
	index int
	out   chan result[T]
}

// New returns a reader over indices [0, n). depth is the number of indices
// that may be fetched ahead of the consumer; depth ≤ 0 disables the worker
// pool and fetches inline from Next. The depth is fixed; use NewGated for a
// resizable bound.
func New[T any](fetch Fetch[T], n, depth int) *Reader[T] {
	if depth <= 0 {
		return &Reader[T]{fetch: fetch, n: n}
	}
	return newAsync(fetch, n, NewGate(depth, depth, depth), min(depth, maxWorkers))
}

// NewGated returns a reader over indices [0, n) whose read-ahead bound is
// the gate's current depth — resizable mid-stream, and shared with every
// other reader on the same gate. A nil gate falls back to a synchronous
// reader.
func NewGated[T any](fetch Fetch[T], n int, g *Gate) *Reader[T] {
	if g == nil {
		return New(fetch, n, 0)
	}
	_, hi := g.Bounds()
	return newAsync(fetch, n, g, min(hi, maxGatedWorkers))
}

func newAsync[T any](fetch Fetch[T], n int, g *Gate, workers int) *Reader[T] {
	_, hi := g.Bounds()
	r := &Reader[T]{fetch: fetch, n: n, async: true, gate: g}
	// pending's capacity matches the gate's maximum so a dispatcher holding
	// a credit never blocks on the slot queue.
	r.pending = make(chan chan result[T], hi)
	r.jobs = make(chan job[T])
	r.done = make(chan struct{})
	r.wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go r.worker()
	}
	go r.dispatch()
	return r
}

// dispatch hands indices to the workers in order. The gate credit taken
// before each index is what bounds the number of outstanding fetches: the
// credit is held from here until the consumer takes the result in Next.
func (r *Reader[T]) dispatch() {
	defer r.wg.Done()
	defer close(r.pending)
	for i := 0; i < r.n; i++ {
		if !r.gate.acquire(r.done) {
			return
		}
		r.held.Add(1)
		out := make(chan result[T], 1)
		select {
		case r.pending <- out:
		case <-r.done:
			return
		}
		select {
		case r.jobs <- job[T]{index: i, out: out}:
		case <-r.done:
			return
		}
	}
}

func (r *Reader[T]) worker() {
	defer r.wg.Done()
	for {
		select {
		case j := <-r.jobs:
			v, err := r.fetch(j.index)
			j.out <- result[T]{v: v, err: err} // buffered; never blocks
		case <-r.done:
			return
		}
	}
}

// Next returns the result for the next index in order. ok is false once all
// n indices have been consumed or the reader has been closed. A fetch error
// is returned in err with ok still true, so the consumer can distinguish
// "stream finished" from "stream failed".
func (r *Reader[T]) Next() (v T, err error, ok bool) {
	if !r.async {
		if r.next >= r.n {
			return v, nil, false
		}
		v, err = r.fetch(r.next)
		r.next++
		return v, err, true
	}
	select {
	case <-r.done: // Close happened-before this Next
		return v, nil, false
	default:
	}
	select {
	case out, open := <-r.pending:
		if !open {
			return v, nil, false
		}
		select {
		case res := <-out:
			r.held.Add(-1)
			r.gate.release(1)
			return res.v, res.err, true
		case <-r.done:
			return v, nil, false
		}
	case <-r.done:
		return v, nil, false
	}
}

// Close stops the prefetcher and waits for every worker to exit. It is
// idempotent and must be called even after a complete consumption (defer it)
// so the goroutines never outlive the filter copy. Fetches already in flight
// finish before their workers observe the close. Credits still held (results
// dispatched but never consumed — an aborted stream) are returned to the
// gate, so readers sharing it are not starved by a sibling's early exit.
func (r *Reader[T]) Close() {
	if !r.async {
		return
	}
	r.closeOnce.Do(func() {
		close(r.done)
		r.wg.Wait()
		r.gate.release(int(r.held.Swap(0)))
	})
}

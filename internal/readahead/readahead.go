// Package readahead provides the bounded, order-preserving prefetch stage
// the reader filters (RFR, DFR) put in front of their emit loops: a small
// worker pool runs the per-window fetch function — positioned reads plus
// uint16→gray-level decode — up to K windows ahead of the consumer, so the
// disk keeps streaming while pieces are cut and sent. This is the staging
// idea of Region Templates applied to the paper's §4.3 reader filters.
//
// The contract is deliberately strict:
//
//   - Order-preserving: Next returns fetch results in exactly the order the
//     indices 0..n-1 would be fetched sequentially, regardless of which
//     worker finishes first.
//   - Bounded: at most depth fetches are completed-but-unconsumed or in
//     flight at any moment, so window buffers in flight stay O(depth).
//   - Synchronous degenerate case: depth ≤ 0 runs every fetch inline on the
//     consumer's goroutine — no worker pool, no reordering window, no extra
//     buffering — reproducing the pre-readahead reader loop bit for bit.
//   - Cancellable: Close releases the workers even when the consumer stops
//     consuming mid-stream (pipeline abort); it is idempotent and safe to
//     defer alongside normal completion.
package readahead

import "sync"

// Fetch produces the item for one index. Fetches run concurrently on worker
// goroutines when depth > 0, so the function must be safe for concurrent
// calls with distinct indices.
type Fetch[T any] func(index int) (T, error)

// maxWorkers caps the pool: the point is overlapping a handful of
// positioned reads with the emit loop, not saturating the CPU.
const maxWorkers = 4

// Reader streams the results of fetch(0..n-1) in order, prefetching up to
// depth indices ahead of the consumer.
type Reader[T any] struct {
	fetch Fetch[T]
	n     int
	depth int

	// Synchronous mode (depth <= 0).
	next int

	// Asynchronous mode. The dispatcher assigns indices to workers through
	// jobs and queues each index's result slot into pending in index order;
	// pending's capacity is the read-ahead bound. Closing done releases
	// every goroutine wherever it blocks.
	pending   chan chan result[T]
	jobs      chan job[T]
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type result[T any] struct {
	v   T
	err error
}

type job[T any] struct {
	index int
	out   chan result[T]
}

// New returns a reader over indices [0, n). depth is the number of indices
// that may be fetched ahead of the consumer; depth ≤ 0 disables the worker
// pool and fetches inline from Next.
func New[T any](fetch Fetch[T], n, depth int) *Reader[T] {
	r := &Reader[T]{fetch: fetch, n: n, depth: depth}
	if depth <= 0 {
		return r
	}
	r.pending = make(chan chan result[T], depth)
	r.jobs = make(chan job[T])
	r.done = make(chan struct{})
	workers := min(depth, maxWorkers)
	r.wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go r.worker()
	}
	go r.dispatch()
	return r
}

// dispatch hands indices to the workers in order. The send into pending
// (capacity depth) is what bounds the number of outstanding fetches: the
// slot is queued before the job is offered to any worker.
func (r *Reader[T]) dispatch() {
	defer r.wg.Done()
	defer close(r.pending)
	for i := 0; i < r.n; i++ {
		out := make(chan result[T], 1)
		select {
		case r.pending <- out:
		case <-r.done:
			return
		}
		select {
		case r.jobs <- job[T]{index: i, out: out}:
		case <-r.done:
			return
		}
	}
}

func (r *Reader[T]) worker() {
	defer r.wg.Done()
	for {
		select {
		case j := <-r.jobs:
			v, err := r.fetch(j.index)
			j.out <- result[T]{v: v, err: err} // buffered; never blocks
		case <-r.done:
			return
		}
	}
}

// Next returns the result for the next index in order. ok is false once all
// n indices have been consumed or the reader has been closed. A fetch error
// is returned in err with ok still true, so the consumer can distinguish
// "stream finished" from "stream failed".
func (r *Reader[T]) Next() (v T, err error, ok bool) {
	if r.depth <= 0 {
		if r.next >= r.n {
			return v, nil, false
		}
		v, err = r.fetch(r.next)
		r.next++
		return v, err, true
	}
	select {
	case <-r.done: // Close happened-before this Next
		return v, nil, false
	default:
	}
	select {
	case out, open := <-r.pending:
		if !open {
			return v, nil, false
		}
		select {
		case res := <-out:
			return res.v, res.err, true
		case <-r.done:
			return v, nil, false
		}
	case <-r.done:
		return v, nil, false
	}
}

// Close stops the prefetcher and waits for every worker to exit. It is
// idempotent and must be called even after a complete consumption (defer it)
// so the goroutines never outlive the filter copy. Fetches already in flight
// finish before their workers observe the close.
func (r *Reader[T]) Close() {
	if r.depth <= 0 {
		return
	}
	r.closeOnce.Do(func() { close(r.done) })
	r.wg.Wait()
}

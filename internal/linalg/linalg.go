// Package linalg provides the small dense linear-algebra kernels needed by
// the Haralick feature computations: a cyclic Jacobi eigensolver for real
// symmetric matrices and a handful of vector helpers.
//
// The matrices involved are tiny (G×G where G is the number of gray levels,
// typically 32), so a simple O(n³)-per-sweep Jacobi iteration is both robust
// and fast enough; it also has the advantage of computing all eigenvalues of
// a symmetric matrix to high relative accuracy, which matters because the
// maximal correlation coefficient (Haralick f14) needs the *second largest*
// eigenvalue of a matrix whose largest eigenvalue is exactly 1.
package linalg

import (
	"errors"
	"math"
	"sort"
)

// Sym is a dense real symmetric matrix stored in row-major order. Only the
// full storage is kept (no packing); callers must keep it symmetric.
type Sym struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j]
}

// NewSym returns a zero N×N symmetric matrix.
func NewSym(n int) *Sym {
	return &Sym{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (s *Sym) At(i, j int) float64 { return s.Data[i*s.N+j] }

// Set sets both (i, j) and (j, i) to v, preserving symmetry.
func (s *Sym) Set(i, j int, v float64) {
	s.Data[i*s.N+j] = v
	s.Data[j*s.N+i] = v
}

// Clone returns a deep copy of the matrix.
func (s *Sym) Clone() *Sym {
	c := NewSym(s.N)
	copy(c.Data, s.Data)
	return c
}

// MaxSymError reports the largest absolute asymmetry |a(i,j)-a(j,i)|.
// Useful for validating inputs in tests.
func (s *Sym) MaxSymError() float64 {
	max := 0.0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := math.Abs(s.At(i, j) - s.At(j, i))
			if d > max {
				max = d
			}
		}
	}
	return max
}

// offDiagNorm returns the Frobenius norm of the strictly upper triangle.
func (s *Sym) offDiagNorm() float64 {
	sum := 0.0
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			v := s.At(i, j)
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// ErrNoConvergence is returned when the Jacobi iteration fails to reduce the
// off-diagonal norm below tolerance within the sweep limit. With the default
// limits this does not happen for well-scaled inputs.
var ErrNoConvergence = errors.New("linalg: jacobi eigensolver did not converge")

const (
	jacobiMaxSweeps = 64
	jacobiTol       = 1e-13
)

// EigenSym computes all eigenvalues of the symmetric matrix a using cyclic
// Jacobi rotations. The input is not modified. Eigenvalues are returned in
// descending order. The tolerance is relative to the Frobenius norm of a.
func EigenSym(a *Sym) ([]float64, error) {
	n := a.N
	if n == 0 {
		return nil, nil
	}
	w := a.Clone()

	// Scale tolerance by the matrix norm so that tiny matrices converge.
	norm := 0.0
	for _, v := range w.Data {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return make([]float64, n), nil
	}
	tol := jacobiTol * norm

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if w.offDiagNorm() <= tol {
			return sortedDiag(w), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that zeroes (p, q).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyRotation(w, p, q, c, s)
			}
		}
	}
	if w.offDiagNorm() <= tol*10 {
		return sortedDiag(w), nil
	}
	return nil, ErrNoConvergence
}

// applyRotation applies the similarity transform Jᵀ W J where J is the Givens
// rotation in the (p, q) plane with cosine c and sine s.
func applyRotation(w *Sym, p, q int, c, s float64) {
	n := w.N
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		akp := w.At(k, p)
		akq := w.At(k, q)
		w.Set(k, p, c*akp-s*akq)
		w.Set(k, q, s*akp+c*akq)
	}
	app := w.At(p, p)
	aqq := w.At(q, q)
	apq := w.At(p, q)
	w.Data[p*n+p] = c*c*app - 2*s*c*apq + s*s*aqq
	w.Data[q*n+q] = s*s*app + 2*s*c*apq + c*c*aqq
	w.Set(p, q, 0)
}

func sortedDiag(w *Sym) []float64 {
	eig := make([]float64, w.N)
	for i := 0; i < w.N; i++ {
		eig[i] = w.At(i, i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig
}

// SecondLargestEigenvalue returns the second largest eigenvalue of a, or 0
// for matrices smaller than 2×2.
func SecondLargestEigenvalue(a *Sym) (float64, error) {
	if a.N < 2 {
		return 0, nil
	}
	eig, err := EigenSym(a)
	if err != nil {
		return 0, err
	}
	return eig[1], nil
}

// MatVec computes y = A·x for the symmetric matrix a.
func MatVec(a *Sym, x []float64) []float64 {
	n := a.N
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := 0.0
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return y
}

// Dot returns the inner product of x and y; the slices must be equal length.
func Dot(x, y []float64) float64 {
	sum := 0.0
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEigenSymDiagonal(t *testing.T) {
	a := NewSym(3)
	a.Set(0, 0, 5)
	a.Set(1, 1, -2)
	a.Set(2, 2, 1)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, -2}
	for i, w := range want {
		if !almostEqual(eig[i], w, 1e-12) {
			t.Errorf("eig[%d] = %v, want %v", i, eig[i], w)
		}
	}
}

func TestEigenSym2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewSym(2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 2)
	a.Set(0, 1, 1)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(eig[0], 3, 1e-12) || !almostEqual(eig[1], 1, 1e-12) {
		t.Errorf("eig = %v, want [3 1]", eig)
	}
}

func TestEigenSym3x3Known(t *testing.T) {
	// Tridiagonal [[2,-1,0],[-1,2,-1],[0,-1,2]]: eigenvalues 2-√2, 2, 2+√2.
	a := NewSym(3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 2)
	}
	a.Set(0, 1, -1)
	a.Set(1, 2, -1)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2 + math.Sqrt2, 2, 2 - math.Sqrt2}
	for i, w := range want {
		if !almostEqual(eig[i], w, 1e-12) {
			t.Errorf("eig[%d] = %v, want %v", i, eig[i], w)
		}
	}
}

func TestEigenSymZeroAndEmpty(t *testing.T) {
	eig, err := EigenSym(NewSym(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range eig {
		if v != 0 {
			t.Errorf("zero matrix eig[%d] = %v", i, v)
		}
	}
	eig, err = EigenSym(NewSym(0))
	if err != nil || eig != nil {
		t.Errorf("empty matrix: got %v, %v", eig, err)
	}
}

func TestEigenSymDoesNotModifyInput(t *testing.T) {
	a := randomSym(rand.New(rand.NewSource(7)), 6)
	before := a.Clone()
	if _, err := EigenSym(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != before.Data[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func randomSym(rng *rand.Rand, n int) *Sym {
	a := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	return a
}

// Property: trace(A) equals the sum of eigenvalues and ‖A‖_F² equals the sum
// of squared eigenvalues (both exact invariants of the spectrum).
func TestEigenSymInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%8) + 1
		a := randomSym(rand.New(rand.NewSource(seed)), n)
		eig, err := EigenSym(a)
		if err != nil {
			return false
		}
		trace, frob2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			for j := 0; j < n; j++ {
				frob2 += a.At(i, j) * a.At(i, j)
			}
		}
		sum, sum2 := 0.0, 0.0
		for _, v := range eig {
			sum += v
			sum2 += v * v
		}
		scale := math.Max(1, math.Sqrt(frob2))
		return almostEqual(trace, sum, 1e-9*scale) && almostEqual(frob2, sum2, 1e-9*scale*scale)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues are returned sorted in descending order.
func TestEigenSymSortedProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%10) + 1
		a := randomSym(rand.New(rand.NewSource(seed)), n)
		eig, err := EigenSym(a)
		if err != nil {
			return false
		}
		for i := 1; i < len(eig); i++ {
			if eig[i] > eig[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for a PSD matrix BᵀB all eigenvalues are non-negative.
func TestEigenSymPSDProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := int(sizeRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		b := make([][]float64, n)
		for i := range b {
			b[i] = make([]float64, n)
			for j := range b[i] {
				b[i][j] = rng.NormFloat64()
			}
		}
		a := NewSym(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += b[k][i] * b[k][j]
				}
				a.Set(i, j, sum)
			}
		}
		eig, err := EigenSym(a)
		if err != nil {
			return false
		}
		for _, v := range eig {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSecondLargestEigenvalue(t *testing.T) {
	a := NewSym(2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 2)
	a.Set(0, 1, 1)
	v, err := SecondLargestEigenvalue(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 1, 1e-12) {
		t.Errorf("second eigenvalue = %v, want 1", v)
	}
	if v, _ := SecondLargestEigenvalue(NewSym(1)); v != 0 {
		t.Errorf("1x1 second eigenvalue = %v, want 0", v)
	}
}

func TestMatVecDotNorm(t *testing.T) {
	a := NewSym(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 1, 3)
	y := MatVec(a, []float64{1, 1})
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("MatVec = %v, want [3 5]", y)
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("Norm2 wrong")
	}
}

func TestMaxSymError(t *testing.T) {
	a := NewSym(2)
	a.Set(0, 1, 1)
	if a.MaxSymError() != 0 {
		t.Error("Set should preserve symmetry")
	}
	a.Data[1] = 2 // break symmetry directly
	if a.MaxSymError() != 1 {
		t.Errorf("MaxSymError = %v, want 1", a.MaxSymError())
	}
}

// Rayleigh-quotient check: the largest eigenvalue must dominate xᵀAx/xᵀx for
// random probe vectors.
func TestEigenSymRayleighBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSym(rng, 8)
	eig, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 8)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		r := Dot(x, MatVec(a, x)) / Dot(x, x)
		if r > eig[0]+1e-9 || r < eig[len(eig)-1]-1e-9 {
			t.Fatalf("Rayleigh quotient %v outside [%v, %v]", r, eig[len(eig)-1], eig[0])
		}
	}
}

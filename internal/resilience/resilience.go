// Package resilience provides the failure-control primitives the serving
// stack wires between the pipeline and its unreliable dependencies — remote
// storage backends and TCP peer links:
//
//   - Breaker: a closed/open/half-open circuit breaker that trips on a
//     sliding error-rate window or a consecutive-failure run, fast-failing
//     callers while the dependency is sick and probing it on a deterministic
//     schedule.
//   - RetryBudget: a token bucket shared by every caller of one dependency.
//     Retries spend tokens and successes replenish them, so a brownout can
//     never amplify into a retry storm — the total retry traffic against a
//     sick dependency is capped regardless of how many readers are stuck.
//   - Hedger: tail-latency insurance for range reads. When a request has
//     not answered within a threshold a second identical request is
//     launched; the first response wins and the loser is canceled.
//
// All three are deterministic given their configuration and an injectable
// clock, so chaos tests reproduce bit-identically under -race.
package resilience

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrOpen marks a call rejected because the circuit breaker is open: the
// dependency kept failing and is being given time to recover. Callers
// translate it into their own taxonomy (the dataset layer wraps it in
// ErrBackendUnavailable; the TCP transport converts it into copy failover).
var ErrOpen = errors.New("resilience: circuit open")

// ErrBudgetExhausted marks a retry abandoned because the shared retry
// budget ran dry — enough retries are already in flight against this
// dependency that adding more would amplify the failure.
var ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")

// Policy is the parsed flag-level configuration of one dependency's
// resilience set. Nil sub-configs disable the corresponding primitive, so
// the zero value is a no-op policy.
type Policy struct {
	Breaker    *BreakerConfig
	Budget     *BudgetConfig
	HedgeAfter time.Duration
}

// Enabled reports whether the policy asks for any primitive at all.
func (p *Policy) Enabled() bool {
	return p != nil && (p.Breaker != nil || p.Budget != nil || p.HedgeAfter > 0)
}

// NewSet instantiates the policy's primitives. A nil or empty policy
// returns nil, which every consumer treats as "resilience off".
func (p *Policy) NewSet() *Set {
	if !p.Enabled() {
		return nil
	}
	s := &Set{}
	if p.Breaker != nil {
		s.Breaker = NewBreaker(*p.Breaker)
	}
	if p.Budget != nil {
		s.Budget = NewRetryBudget(p.Budget.Tokens, p.Budget.Ratio)
	}
	if p.HedgeAfter > 0 {
		s.Hedger = &Hedger{After: p.HedgeAfter}
	}
	return s
}

// Set is one dependency's live resilience state: at most one breaker, one
// shared retry budget and one hedger. Any field may be nil.
type Set struct {
	Breaker *Breaker
	Budget  *RetryBudget
	Hedger  *Hedger
}

// SetStats is a JSON-ready snapshot of a Set, surfaced on the daemon's
// /stats endpoint and folded into per-backend run-report rows.
type SetStats struct {
	BreakerState  string  `json:"breaker_state,omitempty"`
	BreakerTrips  int64   `json:"breaker_trips,omitempty"`
	BreakerProbes int64   `json:"breaker_probes,omitempty"`
	BudgetTokens  float64 `json:"budget_tokens,omitempty"`
	BudgetSpent   int64   `json:"budget_spent,omitempty"`
	BudgetDenied  int64   `json:"budget_denied,omitempty"`
	Hedges        int64   `json:"hedges,omitempty"`
	HedgeWins     int64   `json:"hedge_wins,omitempty"`
}

// Snapshot collects the set's counters. Safe on a nil set (zero stats).
func (s *Set) Snapshot() SetStats {
	var st SetStats
	if s == nil {
		return st
	}
	if s.Breaker != nil {
		bs := s.Breaker.Snapshot()
		st.BreakerState = bs.State
		st.BreakerTrips = bs.Trips
		st.BreakerProbes = bs.Probes
	}
	if s.Budget != nil {
		st.BudgetTokens = s.Budget.Tokens()
		st.BudgetSpent = s.Budget.Spent()
		st.BudgetDenied = s.Budget.Denied()
	}
	if s.Hedger != nil {
		st.Hedges = s.Hedger.Launched()
		st.HedgeWins = s.Hedger.Wins()
	}
	return st
}

// Registry hands out one Set per dependency key (the daemon keys by backend
// host), so every job hitting the same host shares one breaker and one
// retry budget — the storm-proofing only works when the state is shared.
type Registry struct {
	policy Policy

	mu   sync.Mutex
	sets map[string]*Set
}

// NewRegistry builds a registry for the policy. A nil or disabled policy
// returns nil; every Registry method is safe on a nil receiver.
func NewRegistry(p *Policy) *Registry {
	if !p.Enabled() {
		return nil
	}
	return &Registry{policy: *p, sets: map[string]*Set{}}
}

// For returns (creating on first use) the key's shared set. Nil registry
// returns nil.
func (r *Registry) For(key string) *Set {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sets[key]
	if !ok {
		s = r.policy.NewSet()
		r.sets[key] = s
	}
	return s
}

// Snapshot returns every tracked dependency's stats, keyed as registered.
// Nil registry returns nil.
func (r *Registry) Snapshot() map[string]SetStats {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.sets) == 0 {
		return nil
	}
	out := make(map[string]SetStats, len(r.sets))
	for k, s := range r.sets {
		out[k] = s.Snapshot()
	}
	return out
}

// ParseBreaker parses the CLI breaker spec
// "consec[,open-for[,window,error-rate]]" — e.g. "5", "5,2s",
// "5,2s,32,0.5". consec is the consecutive-failure trip threshold; open-for
// the open→half-open probe delay; window/error-rate the sliding-window trip
// condition. "" and "0" disable the breaker (nil config).
func ParseBreaker(s string) (*BreakerConfig, error) {
	if s == "" || s == "0" {
		return nil, nil
	}
	fields := strings.Split(s, ",")
	if len(fields) != 1 && len(fields) != 2 && len(fields) != 4 {
		return nil, fmt.Errorf("resilience: breaker spec %q: want consec[,open-for[,window,error-rate]]", s)
	}
	var cfg BreakerConfig
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("resilience: invalid breaker consecutive-failure threshold %q", fields[0])
	}
	cfg.ConsecFails = n
	if len(fields) > 1 {
		d, err := time.ParseDuration(fields[1])
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("resilience: invalid breaker open-for duration %q", fields[1])
		}
		cfg.OpenFor = d
	}
	if len(fields) > 2 {
		w, err := strconv.Atoi(fields[2])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("resilience: invalid breaker window %q", fields[2])
		}
		cfg.Window = w
		rate, err := strconv.ParseFloat(fields[3], 64)
		if err != nil || rate <= 0 || rate > 1 {
			return nil, fmt.Errorf("resilience: invalid breaker error rate %q (want 0 < rate <= 1)", fields[3])
		}
		cfg.ErrorRate = rate
	}
	return &cfg, nil
}

// ParseBudget parses the CLI retry-budget spec "tokens[,ratio]" — e.g.
// "10", "10,0.2". tokens is the bucket capacity (whole retries available
// from a full bucket); ratio is the fraction of a token returned per
// success. "" and "0" disable the budget (nil config).
func ParseBudget(s string) (*BudgetConfig, error) {
	if s == "" || s == "0" {
		return nil, nil
	}
	fields := strings.Split(s, ",")
	if len(fields) > 2 {
		return nil, fmt.Errorf("resilience: budget spec %q: want tokens[,ratio]", s)
	}
	var cfg BudgetConfig
	tokens, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || tokens < 1 {
		return nil, fmt.Errorf("resilience: invalid retry budget %q (want tokens >= 1)", fields[0])
	}
	cfg.Tokens = tokens
	if len(fields) > 1 {
		ratio, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ratio < 0 || ratio > 1 {
			return nil, fmt.Errorf("resilience: invalid budget replenish ratio %q (want 0 <= ratio <= 1)", fields[1])
		}
		cfg.Ratio = ratio
	}
	return &cfg, nil
}

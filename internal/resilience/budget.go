package resilience

import (
	"sync"
	"sync/atomic"
)

// BudgetConfig tunes a RetryBudget.
type BudgetConfig struct {
	// Tokens is the bucket capacity: the number of retries available from
	// a full bucket. Default 10.
	Tokens float64
	// Ratio is the fraction of one token returned per recorded success.
	// Default 0.1 (ten successes buy back one retry).
	Ratio float64
}

// RetryBudget is a token bucket shared by every caller retrying against one
// dependency. Each retry withdraws a whole token; each success deposits
// Ratio of a token (never above capacity). When the bucket is empty,
// retries are denied until successes replenish it — so during a total
// outage the aggregate retry traffic is capped at the bucket capacity no
// matter how many readers are blocked on the dependency.
type RetryBudget struct {
	mu       sync.Mutex
	tokens   float64
	capacity float64
	ratio    float64

	spent  atomic.Int64
	denied atomic.Int64
}

// NewRetryBudget builds a full bucket. Non-positive capacity defaults to
// 10; a ratio outside (0, 1] defaults to 0.1.
func NewRetryBudget(capacity, ratio float64) *RetryBudget {
	if capacity <= 0 {
		capacity = 10
	}
	if ratio <= 0 || ratio > 1 {
		ratio = 0.1
	}
	return &RetryBudget{tokens: capacity, capacity: capacity, ratio: ratio}
}

// Withdraw takes one token for a retry. It reports false — and counts a
// denial — when less than a whole token remains.
func (b *RetryBudget) Withdraw() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if ok {
		b.spent.Add(1)
	} else {
		b.denied.Add(1)
	}
	return ok
}

// Deposit credits one success, restoring Ratio of a token up to capacity.
func (b *RetryBudget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.mu.Unlock()
}

// Tokens returns the current balance.
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Spent counts granted withdrawals (retries actually attempted).
func (b *RetryBudget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.spent.Load()
}

// Denied counts refused withdrawals (retries abandoned as budget-exhausted).
func (b *RetryBudget) Denied() int64 {
	if b == nil {
		return 0
	}
	return b.denied.Load()
}

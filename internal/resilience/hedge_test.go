package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgeFastPrimarySkipsHedge(t *testing.T) {
	h := &Hedger{After: time.Second}
	var calls atomic.Int64
	v, err := Hedge(context.Background(), h, func(context.Context) (int, error) {
		calls.Add(1)
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Hedge = %d, %v", v, err)
	}
	if calls.Load() != 1 || h.Launched() != 0 {
		t.Fatalf("fast primary launched a hedge: calls=%d launched=%d", calls.Load(), h.Launched())
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	h := &Hedger{After: 5 * time.Millisecond}
	primaryStuck := make(chan struct{})
	var calls atomic.Int64
	v, err := Hedge(context.Background(), h, func(ctx context.Context) (string, error) {
		if calls.Add(1) == 1 {
			// Primary: block until canceled by the winner.
			select {
			case <-ctx.Done():
				close(primaryStuck)
				return "", ctx.Err()
			}
		}
		return "hedge", nil
	})
	if err != nil || v != "hedge" {
		t.Fatalf("Hedge = %q, %v", v, err)
	}
	if h.Launched() != 1 || h.Wins() != 1 {
		t.Fatalf("launched=%d wins=%d, want 1/1", h.Launched(), h.Wins())
	}
	select {
	case <-primaryStuck:
	case <-time.After(time.Second):
		t.Fatal("losing primary was not canceled")
	}
}

func TestHedgeBothFail(t *testing.T) {
	h := &Hedger{After: time.Millisecond}
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Hedge(context.Background(), h, func(ctx context.Context) (int, error) {
		n := calls.Add(1)
		if n == 1 {
			// Primary outlives the hedge threshold, then fails.
			select {
			case <-time.After(20 * time.Millisecond):
			case <-ctx.Done():
			}
		}
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Hedge err = %v, want boom", err)
	}
}

func TestHedgePrimaryFailsBeforeThreshold(t *testing.T) {
	h := &Hedger{After: time.Hour}
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Hedge(context.Background(), h, func(context.Context) (int, error) {
		calls.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A failed primary is a retry problem, not a latency problem: no hedge.
	if calls.Load() != 1 || h.Launched() != 0 {
		t.Fatalf("calls=%d launched=%d, want 1/0", calls.Load(), h.Launched())
	}
}

func TestHedgeNilHedger(t *testing.T) {
	v, err := Hedge[int](context.Background(), nil, func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("nil hedger Hedge = %d, %v", v, err)
	}
}

package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Breaker states.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// BreakerConfig tunes a Breaker. The zero value of any field picks the
// documented default, so `BreakerConfig{ConsecFails: 5}` is a usable config.
type BreakerConfig struct {
	// ConsecFails trips the breaker after this many consecutive failures.
	// Default 5.
	ConsecFails int
	// Window is the size of the sliding outcome window used for the
	// error-rate trip condition. Default 16.
	Window int
	// ErrorRate trips the breaker when the window is full and at least
	// this fraction of its outcomes are failures. Default 0.5.
	ErrorRate float64
	// OpenFor is how long the breaker stays open before admitting a single
	// half-open probe. Default 1s.
	OpenFor time.Duration
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
}

func (c *BreakerConfig) withDefaults() BreakerConfig {
	out := *c
	if out.ConsecFails <= 0 {
		out.ConsecFails = 5
	}
	if out.Window <= 0 {
		out.Window = 16
	}
	if out.ErrorRate <= 0 || out.ErrorRate > 1 {
		out.ErrorRate = 0.5
	}
	if out.OpenFor <= 0 {
		out.OpenFor = time.Second
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	return out
}

// Breaker is a classic three-state circuit breaker.
//
//	closed    — calls flow; outcomes feed a sliding window and a
//	            consecutive-failure counter. Either trip condition opens it.
//	open      — Allow fast-fails with ErrOpen until OpenFor has elapsed.
//	half-open — exactly one caller at a time is admitted as a probe; its
//	            outcome closes the breaker (success) or re-opens it
//	            (failure). Concurrent callers keep fast-failing while the
//	            probe is in flight, so a recovering dependency sees a
//	            strictly bounded trickle.
//
// Probe scheduling is deterministic given the injected clock: the first
// Allow at or after openedAt+OpenFor becomes the probe.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    string
	window   []bool // true = failure, ring buffer
	count    int    // valid entries in window
	head     int    // next write position
	fails    int    // failures currently in window
	consec   int    // consecutive failures since last success
	openedAt time.Time
	probing  bool   // a half-open probe is in flight
	probeGen uint64 // identity of the in-flight probe, monotonic

	trips  atomic.Int64
	probes atomic.Int64
}

// Token identifies one granted Allow so the matching Record (or Cancel) can
// be told apart from stragglers — calls admitted while the breaker was still
// closed whose outcomes arrive after a trip. The zero Token marks a call
// that never asked permission (Record-without-Allow) and is never a probe.
type Token struct {
	probe uint64 // nonzero ⇒ this call was admitted as the half-open probe
}

// NewBreaker builds a closed breaker from cfg (zero fields defaulted).
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{
		cfg:    c,
		state:  StateClosed,
		window: make([]bool, c.Window),
	}
}

// Allow asks permission for one call. It returns a nil error when the call
// may proceed (closed, or admitted as the half-open probe) and ErrOpen when
// the caller must fast-fail. Every nil return must be matched by exactly one
// Record (or Cancel) carrying the returned Token.
func (b *Breaker) Allow() (Token, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return Token{}, nil
	case StateOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor {
			return Token{}, ErrOpen
		}
		b.state = StateHalfOpen
		return b.admitProbeLocked(), nil
	default: // half-open
		if b.probing {
			return Token{}, ErrOpen
		}
		return b.admitProbeLocked(), nil
	}
}

// admitProbeLocked grants the half-open probe slot. Caller holds b.mu.
func (b *Breaker) admitProbeLocked() Token {
	b.probing = true
	b.probeGen++
	b.probes.Add(1)
	return Token{probe: b.probeGen}
}

// Record reports one call's outcome (nil = success) under the Token its
// Allow returned. It is also legal to Record with the zero Token and no
// preceding Allow — e.g. a first-attempt send that needed no permission —
// and such outcomes feed the same trip conditions while closed. In
// half-open, only the in-flight probe's Token may decide the transition:
// a straggler admitted before the trip that finishes after a probe was
// granted (say, an HTTP call slower than OpenFor) is ignored, so a stale
// success cannot close the breaker without the dependency having actually
// been re-probed.
func (b *Breaker) Record(t Token, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		if !b.probing || t.probe != b.probeGen {
			// Straggler (or a canceled probe's late echo); its outcome is
			// stale and the real probe is still pending.
			return
		}
		b.probing = false
		if err != nil {
			b.reopen()
			return
		}
		b.close()
	case StateOpen:
		// A straggler from before the trip; its outcome is stale.
		return
	default:
		b.push(err != nil)
		if err != nil {
			b.consec++
			if b.consec >= b.cfg.ConsecFails || (b.count >= b.cfg.Window && float64(b.fails) >= b.cfg.ErrorRate*float64(b.count)) {
				b.reopen()
			}
			return
		}
		b.consec = 0
	}
}

// push records an outcome into the sliding window. Caller holds b.mu.
func (b *Breaker) push(failed bool) {
	if b.count == len(b.window) {
		if b.window[b.head] {
			b.fails--
		}
	} else {
		b.count++
	}
	b.window[b.head] = failed
	if failed {
		b.fails++
	}
	b.head = (b.head + 1) % len(b.window)
}

// reopen trips the breaker. Caller holds b.mu.
func (b *Breaker) reopen() {
	b.state = StateOpen
	b.openedAt = b.cfg.Clock()
	b.probing = false
	b.trips.Add(1)
}

// close resets the breaker to closed with a clean window. Caller holds b.mu.
func (b *Breaker) close() {
	b.state = StateClosed
	b.count, b.head, b.fails, b.consec = 0, 0, 0, 0
	b.probing = false
}

// Cancel releases a granted Allow without recording an outcome — for calls
// abandoned by caller-side cancellation, which says nothing about the
// dependency's health. When the canceled call held the in-flight probe, the
// probe slot is re-armed so the next Allow becomes the probe; canceling a
// non-probe call is a no-op.
func (b *Breaker) Cancel(t Token) {
	b.mu.Lock()
	if b.state == StateHalfOpen && t.probe != 0 && t.probe == b.probeGen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State returns the current state name. Note an elapsed open breaker still
// reports "open" until an Allow promotes it to half-open.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStats is a point-in-time snapshot of a breaker.
type BreakerStats struct {
	State string `json:"state"`
	// Trips counts closed/half-open → open transitions.
	Trips int64 `json:"trips"`
	// Probes counts half-open probe admissions.
	Probes int64 `json:"probes"`
	// ProbeIn is how long until an open breaker admits its next probe
	// (zero when not open or already due).
	ProbeIn time.Duration `json:"probe_in,omitempty"`
}

// Snapshot returns the breaker's counters and state.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{State: b.state, Trips: b.trips.Load(), Probes: b.probes.Load()}
	if b.state == StateOpen {
		if in := b.cfg.OpenFor - b.cfg.Clock().Sub(b.openedAt); in > 0 {
			st.ProbeIn = in
		}
	}
	return st
}

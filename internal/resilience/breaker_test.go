package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic probe tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

var errBoom = errors.New("boom")

func TestBreakerConsecutiveTrip(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{ConsecFails: 3, OpenFor: time.Second, Clock: clk.Now})
	for i := 0; i < 2; i++ {
		tok, err := b.Allow()
		if err != nil {
			t.Fatalf("closed breaker denied call %d: %v", i, err)
		}
		b.Record(tok, errBoom)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 2 failures = %s, want closed", got)
	}
	tok, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	b.Record(tok, errBoom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3rd consecutive failure = %s, want open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker Allow = %v, want ErrOpen", err)
	}
	if got := b.Snapshot().Trips; got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{ConsecFails: 100, Window: 8, ErrorRate: 0.5, OpenFor: time.Second, Clock: clk.Now})
	// Alternate success/failure: 50% error rate, never 100 consecutive.
	for i := 0; i < 7; i++ {
		tok, err := b.Allow()
		if err != nil {
			t.Fatalf("call %d denied: %v", i, err)
		}
		if i%2 == 0 {
			b.Record(tok, nil)
		} else {
			b.Record(tok, errBoom)
		}
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state before window full = %s, want closed", got)
	}
	tok, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	b.Record(tok, errBoom) // window now full at 4/8 failures = 50%
	if got := b.State(); got != StateOpen {
		t.Fatalf("state at 50%% window error rate = %s, want open", got)
	}
}

func TestBreakerProbeRecovery(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{ConsecFails: 1, OpenFor: time.Second, Clock: clk.Now})
	tok, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	b.Record(tok, errBoom)
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow before OpenFor elapsed = %v, want ErrOpen", err)
	}
	clk.Advance(time.Second)
	// First caller after the window becomes the probe...
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe denied: %v", err)
	}
	// ...and concurrent callers keep fast-failing while it is in flight.
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second caller during probe = %v, want ErrOpen", err)
	}
	b.Record(probe, errBoom) // failed probe re-opens
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	clk.Advance(time.Second)
	probe, err = b.Allow()
	if err != nil {
		t.Fatalf("second probe denied: %v", err)
	}
	b.Record(probe, nil) // successful probe closes
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	tok, err = b.Allow()
	if err != nil {
		t.Fatalf("closed breaker denied call: %v", err)
	}
	b.Record(tok, nil)
	st := b.Snapshot()
	if st.Trips != 2 || st.Probes != 2 {
		t.Fatalf("trips=%d probes=%d, want 2/2", st.Trips, st.Probes)
	}
}

// TestBreakerStragglerCannotDecideProbe: a call admitted while the breaker
// was still closed whose outcome lands after a probe has been granted must
// not be mistaken for the probe's verdict — a stale success must not close
// the breaker, and the real probe's Record still decides.
func TestBreakerStragglerCannotDecideProbe(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{ConsecFails: 1, OpenFor: time.Second, Clock: clk.Now})

	// A slow request is admitted while closed...
	straggler, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	// ...then a fast failure trips the breaker and the probe window passes.
	tok, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	b.Record(tok, errBoom)
	clk.Advance(time.Second)
	probe, err := b.Allow()
	if err != nil {
		t.Fatalf("probe denied: %v", err)
	}

	// The straggler completes (successfully!) while the probe is in flight:
	// it must neither close the breaker nor release the probe slot.
	b.Record(straggler, nil)
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after straggler success = %s, want half-open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while the real probe is in flight = %v, want ErrOpen", err)
	}

	// The probe's own verdict still decides the transition.
	b.Record(probe, errBoom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}

	// Same for Cancel: a canceled non-probe call must not re-arm the slot.
	clk.Advance(time.Second)
	probe, err = b.Allow()
	if err != nil {
		t.Fatalf("second probe denied: %v", err)
	}
	b.Cancel(Token{}) // straggler-style cancel: no-op
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow after non-probe Cancel = %v, want ErrOpen (probe still in flight)", err)
	}
	b.Cancel(probe) // the probe's own cancel re-arms the slot
	probe, err = b.Allow()
	if err != nil {
		t.Fatalf("re-armed probe denied: %v", err)
	}
	b.Record(probe, nil)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
}

func TestBreakerProbeInSnapshot(t *testing.T) {
	clk := &fakeClock{now: time.Unix(100, 0)}
	b := NewBreaker(BreakerConfig{ConsecFails: 1, OpenFor: 4 * time.Second, Clock: clk.Now})
	b.Record(Token{}, errBoom)
	clk.Advance(time.Second)
	st := b.Snapshot()
	if st.State != StateOpen || st.ProbeIn != 3*time.Second {
		t.Fatalf("snapshot = %+v, want open with probe in 3s", st)
	}
}

// TestBreakerStressRace hammers one breaker from many goroutines with a
// fixed-seed failure schedule while a clock-advancer races half-open
// probes against fresh failures. Run under -race; invariants checked:
// every Allow()==nil is matched by one Record, counters are monotonic, and
// the breaker ends in a legal state.
func TestBreakerStressRace(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{ConsecFails: 4, Window: 8, ErrorRate: 0.5, OpenFor: time.Millisecond, Clock: clk.Now})
	const workers = 8
	const callsPerWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < callsPerWorker; i++ {
				tok, err := b.Allow()
				if err != nil {
					if !errors.Is(err, ErrOpen) {
						t.Errorf("Allow returned unexpected error: %v", err)
						return
					}
					// Denied callers nudge the clock toward the probe
					// window so half-open probes race fresh outcomes.
					clk.Advance(200 * time.Microsecond)
					continue
				}
				if rng.Intn(3) == 0 {
					b.Record(tok, errBoom)
				} else {
					b.Record(tok, nil)
				}
			}
		}(int64(w) + 42)
	}
	wg.Wait()
	st := b.Snapshot()
	switch st.State {
	case StateClosed, StateOpen, StateHalfOpen:
	default:
		t.Fatalf("illegal final state %q", st.State)
	}
	if st.Trips < 1 {
		t.Fatalf("expected at least one trip under a 1-in-3 failure schedule, got %d", st.Trips)
	}
	if st.Probes < 1 {
		t.Fatalf("expected at least one probe, got %d", st.Probes)
	}
}

func TestParseBreaker(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want *BreakerConfig
		err  bool
	}{
		{in: "", want: nil},
		{in: "0", want: nil},
		{in: "5", want: &BreakerConfig{ConsecFails: 5}},
		{in: "5,2s", want: &BreakerConfig{ConsecFails: 5, OpenFor: 2 * time.Second}},
		{in: "5,2s,32,0.5", want: &BreakerConfig{ConsecFails: 5, OpenFor: 2 * time.Second, Window: 32, ErrorRate: 0.5}},
		{in: "5,2s,32", err: true},
		{in: "-1", err: true},
		{in: "5,2s,0,0.5", err: true},
		{in: "5,2s,32,1.5", err: true},
		{in: "x", err: true},
	} {
		got, err := ParseBreaker(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseBreaker(%q): want error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBreaker(%q): %v", tc.in, err)
			continue
		}
		switch {
		case tc.want == nil:
			if got != nil {
				t.Errorf("ParseBreaker(%q) = %+v, want nil", tc.in, got)
			}
		case got == nil ||
			got.ConsecFails != tc.want.ConsecFails || got.OpenFor != tc.want.OpenFor ||
			got.Window != tc.want.Window || got.ErrorRate != tc.want.ErrorRate:
			t.Errorf("ParseBreaker(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

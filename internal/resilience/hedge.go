package resilience

import (
	"context"
	"sync/atomic"
	"time"
)

// Hedger launches a backup attempt when the primary has not answered
// within After. One Hedger is shared per dependency; its counters feed the
// backend report.
type Hedger struct {
	// After is the latency threshold before the hedge launches.
	After time.Duration

	launched atomic.Int64
	wins     atomic.Int64
}

// Launched counts hedge attempts started.
func (h *Hedger) Launched() int64 {
	if h == nil {
		return 0
	}
	return h.launched.Load()
}

// Wins counts hedges whose response beat the primary's.
func (h *Hedger) Wins() int64 {
	if h == nil {
		return 0
	}
	return h.wins.Load()
}

// Hedge runs do, launching a second identical attempt if the first has not
// returned within h.After. The first success wins and the loser's context
// is canceled; if both fail the later error is returned. do must be safe to
// run twice concurrently — callers give each attempt a private buffer and
// copy the winner out. A nil or zero-threshold Hedger degenerates to a
// plain call.
func Hedge[T any](ctx context.Context, h *Hedger, do func(context.Context) (T, error)) (T, error) {
	if h == nil || h.After <= 0 {
		return do(ctx)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		v     T
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		go func() {
			v, err := do(cctx)
			ch <- result{v, err, hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(h.After)
	defer timer.Stop()
	inflight, hedged := 1, false
	var last result
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					h.wins.Add(1)
				}
				return r.v, nil
			}
			last = r
			if inflight == 0 {
				return last.v, last.err
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				h.launched.Add(1)
				launch(true)
				inflight++
			}
		}
	}
}

package resilience

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBudgetExhaustThenReplenish(t *testing.T) {
	b := NewRetryBudget(3, 0.5)
	for i := 0; i < 3; i++ {
		if !b.Withdraw() {
			t.Fatalf("withdraw %d denied with tokens remaining", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("withdraw granted from empty bucket")
	}
	if got := b.Denied(); got != 1 {
		t.Fatalf("denied = %d, want 1", got)
	}
	// Two successes at ratio 0.5 buy back one retry.
	b.Deposit()
	if b.Withdraw() {
		t.Fatal("withdraw granted with only half a token")
	}
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("withdraw denied after replenish")
	}
	if got := b.Spent(); got != 4 {
		t.Fatalf("spent = %d, want 4", got)
	}
}

func TestBudgetCapacityCap(t *testing.T) {
	b := NewRetryBudget(2, 1)
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens after over-deposit = %v, want capacity 2", got)
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *RetryBudget
	if !b.Withdraw() {
		t.Fatal("nil budget must grant every withdrawal")
	}
	b.Deposit()
	if b.Spent() != 0 || b.Denied() != 0 || b.Tokens() != 0 {
		t.Fatal("nil budget counters must be zero")
	}
}

// TestBudgetStressRace drives a shared budget from many goroutines with a
// fixed-seed deposit/withdraw mix. Run under -race; checks the invariant
// spent <= capacity + deposits (every granted retry was funded).
func TestBudgetStressRace(t *testing.T) {
	const capacity = 16
	const ratio = 0.25
	b := NewRetryBudget(capacity, ratio)
	const workers = 8
	const opsPerWorker = 2000
	var deposits sync.Map
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := 0
			for i := 0; i < opsPerWorker; i++ {
				if rng.Intn(2) == 0 {
					b.Deposit()
					n++
				} else {
					b.Withdraw()
				}
			}
			deposits.Store(seed, n)
		}(int64(w) + 7)
	}
	wg.Wait()
	total := 0
	deposits.Range(func(_, v any) bool {
		total += v.(int)
		return true
	})
	maxFunded := int64(capacity + float64(total)*ratio + 1)
	if got := b.Spent(); got > maxFunded {
		t.Fatalf("spent %d retries but only %d were funded", got, maxFunded)
	}
	if b.Tokens() < 0 {
		t.Fatalf("negative balance %v", b.Tokens())
	}
}

func TestParseBudget(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want *BudgetConfig
		err  bool
	}{
		{in: "", want: nil},
		{in: "0", want: nil},
		{in: "10", want: &BudgetConfig{Tokens: 10}},
		{in: "10,0.2", want: &BudgetConfig{Tokens: 10, Ratio: 0.2}},
		{in: "0.5", err: true},
		{in: "10,2", err: true},
		{in: "10,0.2,3", err: true},
		{in: "x", err: true},
	} {
		got, err := ParseBudget(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseBudget(%q): want error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBudget(%q): %v", tc.in, err)
			continue
		}
		switch {
		case tc.want == nil:
			if got != nil {
				t.Errorf("ParseBudget(%q) = %+v, want nil", tc.in, got)
			}
		case got == nil || *got != *tc.want:
			t.Errorf("ParseBudget(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// Generic CRC-framed logs.
//
// The portion journal above is one client of a more general artifact: an
// append-only file of length-prefixed, checksummed frames whose only
// permitted damage is a torn tail. Log exposes that substrate directly so
// other subsystems — the analysis daemon's job journal in internal/server —
// get the same crash-safety contract (u32le length | u32le CRC-32C |
// payload, header frame compared byte-for-byte on reopen, torn tail
// truncated away, interval fsync) without reimplementing the framing.

package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Log is an open generic framed log. Append is safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	interval time.Duration
	lastSync time.Time
	closed   bool
}

// CreateLog truncates (or creates) the log at path and writes header as its
// first frame. syncInterval bounds machine-death data loss exactly as it
// does for Journal (0 selects DefaultSyncInterval); the parent directory is
// fsync'd once so the file's existence itself is durable.
func CreateLog(path string, header []byte, syncInterval time.Duration) (*Log, error) {
	if len(header) == 0 {
		return nil, fmt.Errorf("checkpoint: log header must not be empty")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	l := newLog(f, path, syncInterval)
	if err := l.Append(header); err != nil {
		f.Close()
		return nil, err
	}
	if err := l.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	syncDir(filepath.Dir(path))
	return l, nil
}

// OpenLog reopens an existing log: it verifies that the first frame equals
// header byte-for-byte (ErrMismatch otherwise), collects every intact
// subsequent frame, truncates any torn tail, and returns the log positioned
// for further appends together with the surviving payloads and the torn
// byte count.
func OpenLog(path string, header []byte, syncInterval time.Duration) (l *Log, records [][]byte, truncated int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	l = newLog(f, path, syncInterval)
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	off := 0
	sawHeader := false
	for {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break
		}
		if !sawHeader {
			if len(payload) != len(header) || string(payload) != string(header) {
				f.Close()
				return nil, nil, 0, fmt.Errorf("%w (log header differs)", ErrMismatch)
			}
			sawHeader = true
			off = next
			continue
		}
		// Frames are immutable once scanned; copy so truncation or later
		// appends cannot alias the returned slices.
		records = append(records, append([]byte(nil), payload...))
		off = next
	}
	if !sawHeader {
		f.Close()
		return nil, nil, 0, fmt.Errorf("%w: no intact header frame", ErrCorrupt)
	}
	truncated = int64(len(data) - off)
	if truncated > 0 {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("checkpoint: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	return l, records, truncated, nil
}

func newLog(f *os.File, path string, syncInterval time.Duration) *Log {
	if syncInterval <= 0 {
		syncInterval = DefaultSyncInterval
	}
	return &Log{f: f, path: path, interval: syncInterval, lastSync: time.Now()}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Append frames and writes one payload. The write goes straight to the file
// (no user-space buffering), so a process death after the call loses
// nothing; fsync happens on the interval to bound machine-death loss.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("checkpoint: log payload must not be empty")
	}
	if len(payload) > maxRecord {
		return fmt.Errorf("checkpoint: log payload of %d bytes exceeds the %d frame cap", len(payload), maxRecord)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("checkpoint: log %s is closed", l.path)
	}
	if _, err := l.f.Write(encodeFrame(payload)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if time.Since(l.lastSync) >= l.interval {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		l.lastSync = time.Now()
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	l.lastSync = time.Now()
	return nil
}

// Close fsyncs and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := l.f.Sync()
	cerr := l.f.Close()
	if serr != nil {
		return fmt.Errorf("checkpoint: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: %w", cerr)
	}
	return nil
}

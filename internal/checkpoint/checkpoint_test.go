package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"haralick4d/internal/volume"
)

func testHeader() Header {
	return Header{
		Dims:           [4]int{24, 24, 6, 8},
		ROI:            [4]int{5, 5, 2, 2},
		ChunkShape:     [4]int{16, 16, 4, 4},
		OutDims:        [4]int{20, 20, 5, 7},
		GrayLevels:     16,
		NDim:           4,
		Distance:       1,
		Representation: 0,
		Features:       []int{0, 1, 2, 3},
	}
}

func boxVals(b volume.Box) []float64 {
	vals := make([]float64, b.NumVoxels())
	for i := range vals {
		vals[i] = float64(b.Lo[0]*1000 + i)
	}
	return vals
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	hdr := testHeader()
	j, err := Create(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1 := volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{4, 4, 2, 2}}
	b2 := volume.Box{Lo: [4]int{4, 0, 0, 0}, Hi: [4]int{8, 4, 2, 2}}
	if err := j.AppendPortion(1, b1, boxVals(b1)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPortion(1, b1, boxVals(b1)); err != nil { // dup, dropped
		t.Fatal(err)
	}
	if err := j.AppendPortion(2, b2, boxVals(b2)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDegraded(3, volume.Box{Lo: [4]int{0, 0, 0, 3}, Hi: [4]int{12, 12, 3, 6}}, []int{7, 9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st, err := Resume(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st.TruncatedBytes != 0 {
		t.Errorf("TruncatedBytes = %d, want 0", st.TruncatedBytes)
	}
	if len(st.Portions) != 2 {
		t.Fatalf("recovered %d portions, want 2 (duplicate must be dropped)", len(st.Portions))
	}
	if st.Portions[0].Feature != 1 || st.Portions[0].Box != b1 {
		t.Errorf("portion 0 = feature %d box %v", st.Portions[0].Feature, st.Portions[0].Box)
	}
	want := boxVals(b1)
	for i, v := range st.Portions[0].Values {
		if v != want[i] {
			t.Fatalf("portion 0 value %d = %v, want %v", i, v, want[i])
		}
	}
	if len(st.Degraded) != 1 || st.Degraded[0].Chunk != 3 || len(st.Degraded[0].Slices) != 2 {
		t.Errorf("degraded = %+v", st.Degraded)
	}
	// A resumed journal must dedupe against recovered records too.
	if err := j2.AppendPortion(1, b1, boxVals(b1)); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := j2.AppendPortion(1, b1, boxVals(b1)); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if before.Size() != after.Size() {
		t.Errorf("replayed portion grew the journal: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestResumeHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := Create(path, testHeader(), 0)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := testHeader()
	other.GrayLevels = 32
	if _, _, err := Resume(path, other, 0); !errors.Is(err, ErrMismatch) {
		t.Fatalf("Resume with different gray levels: err = %v, want ErrMismatch", err)
	}
}

func TestResumeTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	hdr := testHeader()
	j, err := Create(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1 := volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{4, 4, 2, 2}}
	b2 := volume.Box{Lo: [4]int{4, 0, 0, 0}, Hi: [4]int{8, 4, 2, 2}}
	if err := j.AppendPortion(0, b1, boxVals(b1)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPortion(0, b2, boxVals(b2)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear off the middle of the last record, as a crash mid-write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 11
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, st, err := Resume(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Portions) != 1 || st.Portions[0].Box != b1 {
		t.Fatalf("recovered %d portions (want just the first)", len(st.Portions))
	}
	if st.TruncatedBytes == 0 {
		t.Error("TruncatedBytes = 0, want the torn tail reported")
	}
	// The tail is gone from disk and the journal accepts re-appends of the
	// lost record cleanly.
	if err := j2.AppendPortion(0, b2, boxVals(b2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, st3, err := Resume(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(st3.Portions) != 2 || st3.TruncatedBytes != 0 {
		t.Fatalf("after re-append: %d portions, %d truncated bytes", len(st3.Portions), st3.TruncatedBytes)
	}
}

func TestResumeCorruptMidFileStopsAtDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	hdr := testHeader()
	j, err := Create(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1 := volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{4, 4, 2, 2}}
	b2 := volume.Box{Lo: [4]int{4, 0, 0, 0}, Hi: [4]int{8, 4, 2, 2}}
	j.AppendPortion(0, b1, boxVals(b1))
	off, _ := j.f.Seek(0, 1) // end of the intact prefix
	j.AppendPortion(0, b2, boxVals(b2))
	j.Close()

	// Flip a payload byte in the second portion record: its CRC fails, so
	// everything from it on is treated as the torn tail.
	data, _ := os.ReadFile(path)
	data[off+20] ^= 0xff
	os.WriteFile(path, data, 0o644)

	_, st, err := Resume(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Portions) != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("recovered %d portions, truncated %d bytes", len(st.Portions), st.TruncatedBytes)
	}
}

func TestResumeRejectsInvalidRecords(t *testing.T) {
	hdr := testHeader()
	b := volume.Box{Lo: [4]int{0, 0, 0, 0}, Hi: [4]int{4, 4, 2, 2}}
	cases := []struct {
		name    string
		feature int
		box     volume.Box
	}{
		{"unknown feature", 99, b},
		{"box outside output", 0, volume.Box{Lo: [4]int{18, 0, 0, 0}, Hi: [4]int{25, 4, 2, 2}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.journal")
			j, err := Create(path, hdr, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Bypass AppendPortion's validation to plant the bad record with
			// a valid checksum, as a buggy writer would.
			buf := []byte{recPortion}
			buf = appendU32(buf, uint32(c.feature))
			buf = appendBox(buf, c.box)
			buf = appendU32(buf, uint32(c.box.NumVoxels()))
			for i := 0; i < c.box.NumVoxels(); i++ {
				buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
			}
			if err := j.append(buf); err != nil {
				t.Fatal(err)
			}
			j.Close()
			if _, _, err := Resume(path, hdr, 0); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestCompleteChunks(t *testing.T) {
	hdr := testHeader()
	ck, err := volume.NewChunker(hdr.Dims, hdr.ChunkShape, hdr.ROI)
	if err != nil {
		t.Fatal(err)
	}
	feats := hdr.Features
	st := &State{}

	// Chunk 0 fully covered for every feature, split into two boxes per
	// feature; chunk 1 covered for only one feature.
	c0 := ck.Chunk(0).Origins
	mid := c0
	mid.Hi[0] = c0.Lo[0] + (c0.Hi[0]-c0.Lo[0])/2
	rest := c0
	rest.Lo[0] = mid.Hi[0]
	for _, f := range feats {
		st.Portions = append(st.Portions,
			Portion{Feature: f, Box: mid, Values: make([]float64, mid.NumVoxels())},
			Portion{Feature: f, Box: rest, Values: make([]float64, rest.NumVoxels())})
	}
	c1 := ck.Chunk(1).Origins
	st.Portions = append(st.Portions, Portion{Feature: feats[0], Box: c1, Values: make([]float64, c1.NumVoxels())})
	// Chunk 2 surrendered as degraded.
	st.Degraded = append(st.Degraded, DegradedChunk{Chunk: 2, Origins: ck.Chunk(2).Origins, Slices: []int{4}})

	complete, err := CompleteChunks(st, ck, feats)
	if err != nil {
		t.Fatal(err)
	}
	if !complete[0] {
		t.Error("chunk 0 should be complete")
	}
	if complete[1] {
		t.Error("chunk 1 is only partially covered, must not be complete")
	}
	if !complete[2] {
		t.Error("degraded chunk 2 should count as complete")
	}

	// Overlapping portions are corruption, not progress.
	st.Portions = append(st.Portions, Portion{Feature: feats[0], Box: mid, Values: make([]float64, mid.NumVoxels())})
	st.Portions = append(st.Portions, Portion{Feature: feats[0], Box: mid, Values: make([]float64, mid.NumVoxels())})
	if _, err := CompleteChunks(st, ck, feats); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overfilled chunk: err = %v, want ErrCorrupt", err)
	}

	// A degraded record whose geometry disagrees with the chunker is
	// likewise rejected.
	bad := &State{Degraded: []DegradedChunk{{Chunk: 1, Origins: ck.Chunk(0).Origins}}}
	if _, err := CompleteChunks(bad, ck, feats); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched degraded box: err = %v, want ErrCorrupt", err)
	}
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Package checkpoint implements the durable progress journal behind
// checkpoint/restart: an append-only record file the output sinks write as
// parameter portions become durable, designed so that a run killed at any
// instant — mid-write included — can be resumed with its completed work
// trusted and its torn tail discarded.
//
// File format: a sequence of length-prefixed frames,
//
//	u32le payload length | u32le CRC-32C(payload) | payload
//
// where the payload's first byte is the record type. The first record is
// always a header carrying the run fingerprint (dataset dimensions, ROI,
// chunk shape, gray levels, direction set, feature list, representation);
// a resume against a journal written under any other configuration is
// refused, because portion records are only meaningful in the geometry that
// produced them. Portion records carry one feature's values for one output
// box; degraded records mark chunks a SkipDegraded run surrendered.
//
// Crash safety follows from append-only writes plus per-record checksums:
// the only damage a crash can cause is an incomplete or corrupt final
// frame, which Resume detects, reports and truncates away. Records are
// written through to the operating system on every append (so an aborted
// process loses nothing) and fsync'd on a configurable interval (bounding
// what a machine death can lose).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"haralick4d/internal/volume"
)

const (
	// magic marks byte 1 of the header payload ("H4J1").
	magic   = uint32(0x4834_4a31)
	version = 1

	recHeader   = byte(1)
	recPortion  = byte(2)
	recDegraded = byte(3)

	// maxRecord rejects absurd frame lengths when scanning a damaged file,
	// so a corrupt length field cannot trigger a huge allocation.
	maxRecord = 1 << 28

	// DefaultSyncInterval is the fsync cadence when the caller passes 0.
	DefaultSyncInterval = time.Second
)

// castagnoli is the CRC-32C table, the same polynomial the dataset layer
// uses for per-slice checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrMismatch marks a resume against a journal whose header fingerprint
// does not match the current run configuration.
var ErrMismatch = errors.New("checkpoint: journal belongs to a different run configuration")

// ErrCorrupt marks semantically invalid records in the checksummed body of
// a journal — damage a torn tail cannot explain.
var ErrCorrupt = errors.New("checkpoint: journal corrupt")

// Header is the run fingerprint stored as the journal's first record. Two
// runs may share a journal only if every field matches: portion boxes are
// expressed in output (ROI-origin) coordinates, whose meaning depends on
// all of them.
type Header struct {
	Dims       [4]int // dataset dimensions
	ROI        [4]int
	ChunkShape [4]int
	OutDims    [4]int
	GrayLevels int
	NDim       int
	Distance   int
	// Representation is the matrix representation as an int (the core
	// package's enum); recorded because it selects the compute path whose
	// outputs the journal vouches for.
	Representation int
	// Features are the feature ids in emission order.
	Features []int
}

func (h *Header) encode() []byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, recHeader)
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	for _, dims := range [][4]int{h.Dims, h.ROI, h.ChunkShape, h.OutDims} {
		for k := 0; k < 4; k++ {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(dims[k]))
		}
	}
	for _, v := range []int{h.GrayLevels, h.NDim, h.Distance, h.Representation, len(h.Features)} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, f := range h.Features {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f))
	}
	return buf
}

// Fingerprint returns a short stable hex digest of the header — the same
// byte encoding resume compares, folded through FNV-64a. The autotune memo
// uses it as the config half of its (fingerprint, cell) keys, so memoized
// sweep results are invalidated by exactly the changes that would
// invalidate a checkpoint journal.
func (h *Header) Fingerprint() string {
	sum := fnv.New64a()
	sum.Write(h.encode())
	return fmt.Sprintf("%016x", sum.Sum64())
}

// Portion is one journaled output portion: the values of one feature over
// one box of ROI origins (raster order), exactly as the sink received it.
type Portion struct {
	Feature int
	Box     volume.Box
	Values  []float64
}

// DegradedChunk is one journaled degraded-chunk notice: the chunk a
// SkipDegraded run surrendered, its ROI-origin box, and the lost slice ids.
type DegradedChunk struct {
	Chunk   int
	Origins volume.Box
	Slices  []int
}

// State is everything a resumed run recovers from a journal: the unique
// validated portions and degraded notices, plus how many torn-tail bytes
// the reopen had to discard.
type State struct {
	Portions []Portion
	Degraded []DegradedChunk
	// TruncatedBytes is the size of the incomplete or corrupt tail removed
	// on reopen — nonzero exactly when the writing process died mid-append.
	TruncatedBytes int64
}

// RecoveredVoxels returns the total output voxels the recovered portions
// cover, summed across features.
func (s *State) RecoveredVoxels() int {
	n := 0
	for _, p := range s.Portions {
		n += p.Box.NumVoxels()
	}
	return n
}

type portionKey struct {
	feature int
	box     volume.Box
}

// Journal is an open progress journal. Append methods are safe for
// concurrent use (several sink copies may share one journal).
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	interval time.Duration
	lastSync time.Time
	closed   bool
	// known dedupes appends: failover redelivery and resumed replays may
	// offer the same portion twice, and an idempotent journal keeps the
	// loader trivial. Bounded by the journal's own record count.
	known    map[portionKey]bool
	knownDeg map[int]bool
	buf      []byte // reusable frame-encoding scratch
}

// Create truncates (or creates) the journal at path and writes the header
// record. syncInterval bounds data loss on machine death: appends are
// fsync'd whenever that much time has passed since the last sync (0 selects
// DefaultSyncInterval). The parent directory is fsync'd once so the file's
// existence itself is durable.
func Create(path string, hdr Header, syncInterval time.Duration) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := newJournal(f, path, syncInterval)
	if err := j.append(hdr.encode()); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	syncDir(filepath.Dir(path))
	return j, nil
}

// Resume reopens an existing journal, verifies its header against hdr,
// loads and validates every intact record, truncates any torn tail, and
// returns the journal positioned for further appends together with the
// recovered state.
func Resume(path string, hdr Header, syncInterval time.Duration) (*Journal, *State, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := newJournal(f, path, syncInterval)
	st, err := j.load(hdr)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, st, nil
}

func newJournal(f *os.File, path string, syncInterval time.Duration) *Journal {
	if syncInterval <= 0 {
		syncInterval = DefaultSyncInterval
	}
	return &Journal{
		f:        f,
		path:     path,
		interval: syncInterval,
		lastSync: time.Now(),
		known:    map[portionKey]bool{},
		knownDeg: map[int]bool{},
	}
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// load scans the whole file, stopping at the first frame that is short,
// oversized or fails its checksum (the torn tail), and truncates the file
// back to the last intact record. Checksummed records that fail semantic
// validation are reported as corruption instead: a torn append cannot
// produce them.
func (j *Journal) load(hdr Header) (*State, error) {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st := &State{}
	featOK := map[int]bool{}
	for _, f := range hdr.Features {
		featOK[f] = true
	}
	off := 0
	sawHeader := false
	for {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break
		}
		if !sawHeader {
			if payload[0] != recHeader {
				return nil, fmt.Errorf("%w: first record has type %d, want header", ErrCorrupt, payload[0])
			}
			want := hdr.encode()
			if len(payload) != len(want) || string(payload) != string(want) {
				return nil, fmt.Errorf("%w (run fingerprint differs: dataset dims, ROI, chunking, gray levels, directions, features and representation must all match)", ErrMismatch)
			}
			sawHeader = true
			off = next
			continue
		}
		switch payload[0] {
		case recPortion:
			p, err := decodePortion(payload)
			if err != nil {
				return nil, err
			}
			if !featOK[p.Feature] {
				return nil, fmt.Errorf("%w: portion for feature %d not in the run's feature set", ErrCorrupt, p.Feature)
			}
			if !outBox(hdr.OutDims).ContainsBox(p.Box) || p.Box.Empty() {
				return nil, fmt.Errorf("%w: portion box %v outside output %v", ErrCorrupt, p.Box, hdr.OutDims)
			}
			key := portionKey{p.Feature, p.Box}
			if !j.known[key] {
				j.known[key] = true
				st.Portions = append(st.Portions, p)
			}
		case recDegraded:
			d, err := decodeDegraded(payload)
			if err != nil {
				return nil, err
			}
			if !outBox(hdr.OutDims).ContainsBox(d.Origins) || d.Origins.Empty() {
				return nil, fmt.Errorf("%w: degraded box %v outside output %v", ErrCorrupt, d.Origins, hdr.OutDims)
			}
			if !j.knownDeg[d.Chunk] {
				j.knownDeg[d.Chunk] = true
				st.Degraded = append(st.Degraded, d)
			}
		default:
			return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, payload[0])
		}
		off = next
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: no intact header record", ErrCorrupt)
	}
	st.TruncatedBytes = int64(len(data) - off)
	if st.TruncatedBytes > 0 {
		if err := j.f.Truncate(int64(off)); err != nil {
			return nil, fmt.Errorf("checkpoint: truncating torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(off), 0); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return st, nil
}

// encodeFrame wraps one payload in the journal's on-disk frame:
// u32le length | u32le CRC-32C | payload.
func encodeFrame(payload []byte) []byte {
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	return append(frame, payload...)
}

// nextFrame returns the payload of the frame at off and the offset of the
// next one; ok is false when the bytes from off on do not form an intact
// frame (end of file or torn tail).
func nextFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+8 > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if n < 1 || n > maxRecord || off+8+n > len(data) {
		return nil, 0, false
	}
	payload = data[off+8 : off+8+n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, false
	}
	return payload, off + 8 + n, true
}

func outBox(outDims [4]int) volume.Box {
	return volume.Box{Hi: outDims}
}

// AppendPortion journals one completed output portion. Duplicates of
// already-journaled portions (failover redelivery, resumed replays) are
// dropped, keeping the file append-only without growing on re-offers.
func (j *Journal) AppendPortion(feature int, box volume.Box, values []float64) error {
	if len(values) != box.NumVoxels() {
		return fmt.Errorf("checkpoint: portion for feature %d has %d values, box holds %d", feature, len(values), box.NumVoxels())
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	key := portionKey{feature, box}
	if j.known[key] {
		return nil
	}
	buf := j.buf[:0]
	buf = append(buf, recPortion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(feature))
	buf = appendBox(buf, box)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(values)))
	for _, v := range values {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	j.buf = buf
	if err := j.appendLocked(buf); err != nil {
		return err
	}
	j.known[key] = true
	return nil
}

// AppendDegraded journals one degraded-chunk notice, deduplicated by chunk
// id.
func (j *Journal) AppendDegraded(chunk int, origins volume.Box, slices []int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.knownDeg[chunk] {
		return nil
	}
	buf := j.buf[:0]
	buf = append(buf, recDegraded)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(chunk))
	buf = appendBox(buf, origins)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(slices)))
	for _, s := range slices {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s))
	}
	j.buf = buf
	if err := j.appendLocked(buf); err != nil {
		return err
	}
	j.knownDeg[chunk] = true
	return nil
}

func (j *Journal) append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(payload)
}

// appendLocked frames and writes one record. The write goes straight to the
// file (no user-space buffering), so a process death after the call loses
// nothing; fsync happens on the interval to bound machine-death loss.
func (j *Journal) appendLocked(payload []byte) error {
	if j.closed {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(encodeFrame(payload)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if time.Since(j.lastSync) >= j.interval {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		j.lastSync = time.Now()
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	j.lastSync = time.Now()
	return nil
}

// Close fsyncs and closes the journal. Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("checkpoint: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: %w", cerr)
	}
	return nil
}

func appendBox(buf []byte, b volume.Box) []byte {
	for k := 0; k < 4; k++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Lo[k]))
	}
	for k := 0; k < 4; k++ {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Hi[k]))
	}
	return buf
}

type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.data) {
		d.err = fmt.Errorf("%w: truncated record body", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.err = fmt.Errorf("%w: truncated record body", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

func (d *decoder) box() volume.Box {
	var b volume.Box
	for k := 0; k < 4; k++ {
		b.Lo[k] = int(int32(d.u32()))
	}
	for k := 0; k < 4; k++ {
		b.Hi[k] = int(int32(d.u32()))
	}
	return b
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, len(d.data)-d.off)
	}
	return nil
}

func decodePortion(payload []byte) (Portion, error) {
	d := &decoder{data: payload, off: 1}
	var p Portion
	p.Feature = int(int32(d.u32()))
	p.Box = d.box()
	n := int(d.u32())
	if d.err == nil {
		if want := p.Box.NumVoxels(); n != want || n < 0 {
			return p, fmt.Errorf("%w: portion has %d values, box holds %d", ErrCorrupt, n, want)
		}
		p.Values = make([]float64, n)
		for i := range p.Values {
			p.Values[i] = math.Float64frombits(d.u64())
		}
	}
	return p, d.done()
}

func decodeDegraded(payload []byte) (DegradedChunk, error) {
	d := &decoder{data: payload, off: 1}
	var dc DegradedChunk
	dc.Chunk = int(int32(d.u32()))
	dc.Origins = d.box()
	n := int(d.u32())
	if d.err == nil {
		if n < 0 || n > maxRecord/4 {
			return dc, fmt.Errorf("%w: degraded record claims %d slices", ErrCorrupt, n)
		}
		dc.Slices = make([]int, n)
		for i := range dc.Slices {
			dc.Slices[i] = int(int32(d.u32()))
		}
	}
	return dc, d.done()
}

// CompleteChunks maps the recovered state onto chunk geometry: a chunk is
// complete — safe to skip on resume — when every feature's journaled
// portions cover its ROI-origin box exactly, or when it was journaled as
// degraded. Overlapping or misrouted portions are corruption (the pipeline
// never produces them), not partial progress.
func CompleteChunks(st *State, ck *volume.Chunker, feats []int) (map[int]bool, error) {
	slot := map[int]int{}
	for i, f := range feats {
		slot[f] = i
	}
	type coverage struct {
		per    []int
		voxels int
	}
	cov := map[int]*coverage{}
	for _, p := range st.Portions {
		s, ok := slot[p.Feature]
		if !ok {
			return nil, fmt.Errorf("%w: portion for feature %d not in the run's feature set", ErrCorrupt, p.Feature)
		}
		idx := ck.OwnerOf(p.Box.Lo)
		ch := ck.Chunk(idx)
		if !ch.Origins.ContainsBox(p.Box) {
			return nil, fmt.Errorf("%w: portion box %v crosses chunk %d origins %v", ErrCorrupt, p.Box, idx, ch.Origins)
		}
		c := cov[idx]
		if c == nil {
			c = &coverage{per: make([]int, len(feats)), voxels: ch.Origins.NumVoxels()}
			cov[idx] = c
		}
		c.per[s] += p.Box.NumVoxels()
		if c.per[s] > c.voxels {
			return nil, fmt.Errorf("%w: feature %d portions overfill chunk %d", ErrCorrupt, p.Feature, idx)
		}
	}
	complete := map[int]bool{}
	for idx, c := range cov {
		full := true
		for _, n := range c.per {
			if n != c.voxels {
				full = false
				break
			}
		}
		if full {
			complete[idx] = true
		}
	}
	for _, d := range st.Degraded {
		if d.Chunk < 0 || d.Chunk >= ck.Count() {
			return nil, fmt.Errorf("%w: degraded chunk %d out of range [0, %d)", ErrCorrupt, d.Chunk, ck.Count())
		}
		if got := ck.Chunk(d.Chunk).Origins; got != d.Origins {
			return nil, fmt.Errorf("%w: degraded chunk %d box %v, geometry says %v", ErrCorrupt, d.Chunk, d.Origins, got)
		}
		complete[d.Chunk] = true
	}
	return complete, nil
}

// syncDir best-effort fsyncs a directory so a freshly created journal file
// survives a machine death (ignored on filesystems that refuse it).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

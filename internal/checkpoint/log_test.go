package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	hdr := []byte("h4d-test-log-v1")
	l, err := CreateLog(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte(`{"a":1}`), []byte(`{"b":2}`), []byte(`{"c":3}`)}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, trunc, err := OpenLog(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if trunc != 0 {
		t.Fatalf("clean log reports %d torn bytes", trunc)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i, p := range payloads {
		if string(recs[i]) != string(p) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], p)
		}
	}
	// The reopened log must accept further appends, and a second reopen must
	// see both generations.
	if err := l2.Append([]byte(`{"d":4}`)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err = OpenLog(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || string(recs[3]) != `{"d":4}` {
		t.Fatalf("after second generation: %d records, last %q", len(recs), recs[len(recs)-1])
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	hdr := []byte("hdr")
	l, err := CreateLog(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a frame header with no body.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0x12}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, recs, trunc, err := OpenLog(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trunc != 5 {
		t.Fatalf("torn bytes = %d, want 5", trunc)
	}
	if len(recs) != 1 || string(recs[0]) != "intact" {
		t.Fatalf("recovered %v, want the one intact record", recs)
	}
	// Appends after truncation must land on a clean frame boundary.
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, trunc, err = OpenLog(path, hdr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if trunc != 0 || len(recs) != 2 || string(recs[1]) != "after" {
		t.Fatalf("post-truncation reopen: trunc=%d recs=%q", trunc, recs)
	}
}

func TestLogHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := CreateLog(path, []byte("v1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, _, _, err := OpenLog(path, []byte("v2"), 0); !errors.Is(err, ErrMismatch) {
		t.Fatalf("mismatched header: err = %v, want ErrMismatch", err)
	}
}

func TestLogEmptyPayloadRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.log")
	l, err := CreateLog(path, []byte("v1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty payload accepted; a zero-length frame would be unscannable")
	}
}

// Package metrics is the observability layer of the filter-stream runtime:
// cheap atomic counters, high-water gauges and wall-clock span timers that
// the engines and filters update on the hot path, plus the structured
// RunReport (report.go) every engine assembles at the end of a run.
//
// The paper's entire evaluation (§6, Figs. 6–12) is built from per-filter
// timing decompositions — read time vs. chunk assembly vs. texture compute
// vs. stream transfer. This package makes that decomposition a first-class
// output of every run instead of something reconstructed with ad-hoc
// timers.
//
// Concurrency: all primitives are safe for concurrent use. A filter copy's
// Copy set is written by that copy's goroutine only, but the report builder
// reads it after the run, and pool counters may be bumped from kernel
// worker goroutines, so everything stays atomic.
package metrics

import (
	"sync/atomic"
	"time"
)

// Counter is a cheap atomic event counter.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// MaxGauge tracks the high-water mark of a sampled quantity (queue depths).
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the gauge to v if v exceeds the current maximum.
func (g *MaxGauge) Observe(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// Timer accumulates durations: total, count and per-event maximum. Under
// the local and TCP engines durations are host wall time; under the
// simulated cluster the engine feeds it virtual time for stream waits,
// while filter-recorded spans remain host wall time (see RunReport docs).
type Timer struct{ count, ns, max atomic.Int64 }

// Add records one measured duration.
func (t *Timer) Add(d time.Duration) {
	t.count.Add(1)
	t.ns.Add(int64(d))
	for {
		cur := t.max.Load()
		if int64(d) <= cur || t.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Start opens a wall-clock span ending at Span.End.
func (t *Timer) Start() Span { return Span{t: t, start: time.Now()} }

// Count returns the number of durations recorded so far.
func (t *Timer) Count() int64 { return t.count.Load() }

// Stat snapshots the timer into its JSON-ready form.
func (t *Timer) Stat() SpanStat {
	return SpanStat{Count: t.count.Load(), TotalNS: t.ns.Load(), MaxNS: t.max.Load()}
}

// Span is one open wall-clock measurement. The zero Span is a no-op, which
// is how nil metric sets disable recording without branches at call sites.
type Span struct {
	t     *Timer
	start time.Time
}

// End closes the span and records its duration.
func (s Span) End() {
	if s.t != nil {
		s.t.Add(time.Since(s.start))
	}
}

// Span names used by the filters; the RunReport spans tables are keyed by
// these.
const (
	SpanRead     = "read"      // disk/DICOM read + requantization (RFR, DFR, SRC)
	SpanReadWait = "read-wait" // emit loop waiting on the read-ahead stage (RFR, DFR)
	SpanAssemble = "assemble"  // chunk/image stitching (IIC, HIC)
	SpanCompute  = "compute"   // texture kernel time (HMP, HCC, HPC)
	SpanEmit     = "emit"      // Send/SendTo call time, including stream backpressure
	SpanWrite    = "write"     // output persistence (USO records, JPEG encode, Collector)
)

// Copy collects one filter copy's instrumented activity beyond what the
// engine measures on its own (busy/blocked/stalled, messages, bytes). All
// methods are nil-receiver safe: a nil *Copy records nothing, so filters
// run unchanged when metrics are disabled.
type Copy struct {
	Read, ReadWait, Assemble, Compute, Emit, Write Timer
	PoolHit, PoolMiss                              Counter
}

// StartRead opens a read span (no-op on nil receiver).
func (c *Copy) StartRead() Span {
	if c == nil {
		return Span{}
	}
	return c.Read.Start()
}

// StartReadWait opens a read-wait span — the time a reader's emit loop
// spends blocked on the read-ahead stage (no-op on nil receiver).
func (c *Copy) StartReadWait() Span {
	if c == nil {
		return Span{}
	}
	return c.ReadWait.Start()
}

// StartAssemble opens an assemble span (no-op on nil receiver).
func (c *Copy) StartAssemble() Span {
	if c == nil {
		return Span{}
	}
	return c.Assemble.Start()
}

// StartCompute opens a compute span (no-op on nil receiver).
func (c *Copy) StartCompute() Span {
	if c == nil {
		return Span{}
	}
	return c.Compute.Start()
}

// StartEmit opens an emit span (no-op on nil receiver).
func (c *Copy) StartEmit() Span {
	if c == nil {
		return Span{}
	}
	return c.Emit.Start()
}

// StartWrite opens a write span (no-op on nil receiver).
func (c *Copy) StartWrite() Span {
	if c == nil {
		return Span{}
	}
	return c.Write.Start()
}

// Pool records one buffer-pool lease outcome (no-op on nil receiver).
func (c *Copy) Pool(hit bool) {
	if c == nil {
		return
	}
	if hit {
		c.PoolHit.Inc()
	} else {
		c.PoolMiss.Inc()
	}
}

// Progress returns a monotone heartbeat derived from the span timers and
// pool counters: it grows whenever the copy completes any instrumented
// activity. The stall watchdog samples it (together with the engine's own
// message counters) to distinguish a slow-but-working filter from a wedged
// one. Nil-receiver safe: a nil *Copy reports 0, leaving the engine
// counters as the only heartbeat when metrics are disabled.
func (c *Copy) Progress() int64 {
	if c == nil {
		return 0
	}
	return c.Read.Count() + c.ReadWait.Count() + c.Assemble.Count() +
		c.Compute.Count() + c.Emit.Count() + c.Write.Count() +
		c.PoolHit.Load() + c.PoolMiss.Load()
}

// Spans snapshots the non-empty span timers, keyed by span name.
func (c *Copy) Spans() map[string]SpanStat {
	if c == nil {
		return nil
	}
	out := map[string]SpanStat{}
	for name, t := range map[string]*Timer{
		SpanRead: &c.Read, SpanReadWait: &c.ReadWait, SpanAssemble: &c.Assemble,
		SpanCompute: &c.Compute, SpanEmit: &c.Emit, SpanWrite: &c.Write,
	} {
		if st := t.Stat(); st.Count > 0 {
			out[name] = st
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Stream collects one connection's (stream bundle's) traffic: buffer and
// byte counts, the consumer-queue high-water mark, and the time producers
// spent inside Send on this stream — which, under demand-driven credit
// flow control, is the time spent waiting for queue credit.
type Stream struct {
	Buffers, Bytes Counter
	QueueMax       MaxGauge
	SendWait       Timer
}

// ObserveSend records one delivered buffer: its payload size, the
// producer-side wait, and the consumer queue depth observed after the
// delivery. Nil-receiver safe.
func (s *Stream) ObserveSend(bytes int64, wait time.Duration, depth int64) {
	if s == nil {
		return
	}
	s.Buffers.Inc()
	s.Bytes.Add(bytes)
	s.QueueMax.Observe(depth)
	s.SendWait.Add(wait)
}

// Conn collects one ordered node-pair TCP connection's activity: envelopes
// and on-the-wire bytes in each direction, encode+write time on the sender
// and read+decode time on the receiver.
type Conn struct {
	MsgsOut, WireBytesOut Counter
	Send                  Timer
	MsgsIn, WireBytesIn   Counter
	Recv                  Timer

	// Fault-tolerance counters, active when the transport runs with a
	// RetryPolicy: envelope retransmissions, successful reconnects, duplicate
	// envelopes dropped by the receiver's sequence filter, and receive-side
	// decode failures recovered by retransmission.
	Retries, Redials        Counter
	DupsDropped, RecvErrors Counter
}

package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// SpanStat is the JSON-ready snapshot of a Timer.
type SpanStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// Total returns the accumulated duration.
func (s SpanStat) Total() time.Duration { return time.Duration(s.TotalNS) }

// add folds another snapshot into this one (for per-filter aggregates).
func (s SpanStat) add(o SpanStat) SpanStat {
	s.Count += o.Count
	s.TotalNS += o.TotalNS
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	return s
}

// CopyReport is one filter copy's row of the per-filter table. BusyNS is
// the time the copy spent executing filter code; BlockedRecvNS is the time
// blocked on empty inputs (upstream starvation); StalledSendNS is the time
// blocked on full downstream queues (backpressure). The three together
// cover the copy's lifetime, so per copy they sum to roughly the engine's
// elapsed time.
type CopyReport struct {
	Copy          int                 `json:"copy"`
	Node          int                 `json:"node"`
	BusyNS        int64               `json:"busy_ns"`
	BlockedRecvNS int64               `json:"blocked_recv_ns"`
	StalledSendNS int64               `json:"stalled_send_ns"`
	MsgsIn        int64               `json:"msgs_in"`
	MsgsOut       int64               `json:"msgs_out"`
	BytesIn       int64               `json:"bytes_in"`
	BytesOut      int64               `json:"bytes_out"`
	Spans         map[string]SpanStat `json:"spans,omitempty"`
	PoolHits      int64               `json:"pool_hits,omitempty"`
	PoolMisses    int64               `json:"pool_misses,omitempty"`
	// Failed marks a copy whose failure the engine tolerated via failover;
	// Failure records the tolerated error.
	Failed  bool   `json:"failed,omitempty"`
	Failure string `json:"failure,omitempty"`
}

// FilterReport is one logical filter's table entry: per-copy rows plus
// aggregates across copies.
type FilterReport struct {
	Name          string              `json:"name"`
	Copies        []CopyReport        `json:"copies"`
	BusyNS        int64               `json:"busy_ns"`
	BlockedRecvNS int64               `json:"blocked_recv_ns"`
	StalledSendNS int64               `json:"stalled_send_ns"`
	MsgsIn        int64               `json:"msgs_in"`
	MsgsOut       int64               `json:"msgs_out"`
	BytesIn       int64               `json:"bytes_in"`
	BytesOut      int64               `json:"bytes_out"`
	Spans         map[string]SpanStat `json:"spans,omitempty"`
	PoolHits      int64               `json:"pool_hits,omitempty"`
	PoolMisses    int64               `json:"pool_misses,omitempty"`
	// CopyFailures counts copies whose failure was tolerated by failover
	// (aggregated by Finalize); Redelivered counts buffers requeued from dead
	// copies to surviving siblings (engine-provided, preserved by Finalize).
	CopyFailures int   `json:"copy_failures,omitempty"`
	Redelivered  int64 `json:"redelivered,omitempty"`
}

// StreamReport is one stream bundle's (connection's) table entry.
// SendWaitNS is producer time spent inside Send on this stream; under
// demand-driven credit flow control that is the credit-wait time.
type StreamReport struct {
	From       string `json:"from"`
	FromPort   string `json:"from_port"`
	To         string `json:"to"`
	ToPort     string `json:"to_port"`
	Policy     string `json:"policy"`
	Buffers    int64  `json:"buffers"`
	Bytes      int64  `json:"bytes"`
	QueueMax   int64  `json:"queue_max"`
	SendWaits  int64  `json:"send_waits"`
	SendWaitNS int64  `json:"send_wait_ns"`
}

// ConnReport is one ordered node pair's TCP connection entry: envelopes and
// wire bytes in each direction plus sender encode+write and receiver
// read+decode time (the latter includes time waiting for data to arrive).
type ConnReport struct {
	FromNode     int   `json:"from_node"`
	ToNode       int   `json:"to_node"`
	MsgsOut      int64 `json:"msgs_out"`
	WireBytesOut int64 `json:"wire_bytes_out"`
	SendNS       int64 `json:"send_ns"`
	MsgsIn       int64 `json:"msgs_in"`
	WireBytesIn  int64 `json:"wire_bytes_in"`
	RecvNS       int64 `json:"recv_ns"`
	// Fault-tolerance counters, populated when a RetryPolicy is active:
	// envelope retransmissions, successful reconnects, duplicate envelopes
	// dropped by the sequence filter, and receive-side decode failures
	// recovered by retransmission.
	Retries     int64 `json:"retries,omitempty"`
	Redials     int64 `json:"redials,omitempty"`
	DupsDropped int64 `json:"dups_dropped,omitempty"`
	RecvErrors  int64 `json:"recv_errors,omitempty"`
	// Link resilience counters, populated when the retry policy carries a
	// pair breaker or budget: breaker state/trips/probes and shared-budget
	// retries spent/denied for this ordered node pair.
	BreakerState  string `json:"breaker_state,omitempty"`
	BreakerTrips  int64  `json:"breaker_trips,omitempty"`
	BreakerProbes int64  `json:"breaker_probes,omitempty"`
	BudgetSpent   int64  `json:"budget_spent,omitempty"`
	BudgetDenied  int64  `json:"budget_denied,omitempty"`
}

// BackendReport is one storage backend's I/O table entry: object opens,
// positioned reads and bytes fetched from the backing store, plus the block
// cache's hit/miss/evict/fetch counters when a cache layer is configured.
// Populated from dataset.Stats after the run (the dataset layer stays free
// of metrics imports and vice versa).
type BackendReport struct {
	Scheme          string `json:"scheme"`
	URL             string `json:"url"`
	Opens           int64  `json:"opens"`
	Reads           int64  `json:"reads"`
	ReadBytes       int64  `json:"read_bytes"`
	CacheHits       int64  `json:"cache_hits,omitempty"`
	CacheMisses     int64  `json:"cache_misses,omitempty"`
	CacheEvictions  int64  `json:"cache_evictions,omitempty"`
	CacheFetchBytes int64  `json:"cache_fetch_bytes,omitempty"`
	// Resilience counters, populated when the backend carries a breaker,
	// retry budget, hedger or serve-stale layer.
	BreakerState      string `json:"breaker_state,omitempty"`
	BreakerTrips      int64  `json:"breaker_trips,omitempty"`
	BreakerProbes     int64  `json:"breaker_probes,omitempty"`
	RetryBudgetSpent  int64  `json:"retry_budget_spent,omitempty"`
	RetryBudgetDenied int64  `json:"retry_budget_denied,omitempty"`
	HedgedReads       int64  `json:"hedged_reads,omitempty"`
	HedgeWins         int64  `json:"hedge_wins,omitempty"`
	StaleReads        int64  `json:"stale_reads,omitempty"`
}

// PathEntry is one filter's row of the critical-path summary: the mean
// per-copy time split into busy/blocked/stalled shares of the elapsed run.
// The filter with the largest busy share is the pipeline's bottleneck — the
// stage whose copies the paper's Figs. 7–9 would replicate next.
type PathEntry struct {
	Filter     string  `json:"filter"`
	Copies     int     `json:"copies"`
	MeanBusyNS int64   `json:"mean_busy_ns"`
	BusyShare  float64 `json:"busy_share"`
	RecvShare  float64 `json:"recv_share"`
	SendShare  float64 `json:"send_share"`
}

// Summary is the pipeline-wide critical-path summary.
type Summary struct {
	Bottleneck string      `json:"bottleneck"`
	Entries    []PathEntry `json:"entries"`
}

// RunReport is the structured result of one engine run: per-filter and
// per-stream tables, the TCP network table when applicable, and the
// critical-path summary. It is JSON-serializable as-is; durations are
// nanoseconds. Under the simulated-cluster engine, engine-measured fields
// (busy/blocked/stalled, stream waits, elapsed) are virtual time while
// filter-recorded spans remain host wall time.
type RunReport struct {
	Engine    string          `json:"engine"`
	ElapsedNS int64           `json:"elapsed_ns"`
	Filters   []FilterReport  `json:"filters"`
	Streams   []StreamReport  `json:"streams,omitempty"`
	Network   []ConnReport    `json:"network,omitempty"`
	Backends  []BackendReport `json:"backends,omitempty"`
	// Tuning describes the autotune controller's decisions when live
	// tuning was enabled for the run; nil otherwise.
	Tuning  *TuningReport `json:"tuning,omitempty"`
	Summary Summary       `json:"summary"`
}

// Elapsed returns the run's end-to-end time.
func (r *RunReport) Elapsed() time.Duration { return time.Duration(r.ElapsedNS) }

// Filter returns the named filter's table entry, or nil.
func (r *RunReport) Filter(name string) *FilterReport {
	for i := range r.Filters {
		if r.Filters[i].Name == name {
			return &r.Filters[i]
		}
	}
	return nil
}

// Span returns the named filter's aggregated span across all copies.
func (r *RunReport) Span(filter, span string) SpanStat {
	f := r.Filter(filter)
	if f == nil {
		return SpanStat{}
	}
	return f.Spans[span]
}

// Finalize computes the per-filter aggregates and the critical-path
// summary. Engines call it once after populating the per-copy rows.
func (r *RunReport) Finalize() {
	elapsed := float64(r.ElapsedNS)
	r.Summary = Summary{}
	for i := range r.Filters {
		f := &r.Filters[i]
		f.BusyNS, f.BlockedRecvNS, f.StalledSendNS = 0, 0, 0
		f.MsgsIn, f.MsgsOut, f.BytesIn, f.BytesOut = 0, 0, 0, 0
		f.PoolHits, f.PoolMisses = 0, 0
		f.CopyFailures = 0 // Redelivered is engine-provided, not re-derived
		f.Spans = nil
		for _, c := range f.Copies {
			f.BusyNS += c.BusyNS
			f.BlockedRecvNS += c.BlockedRecvNS
			f.StalledSendNS += c.StalledSendNS
			f.MsgsIn += c.MsgsIn
			f.MsgsOut += c.MsgsOut
			f.BytesIn += c.BytesIn
			f.BytesOut += c.BytesOut
			f.PoolHits += c.PoolHits
			f.PoolMisses += c.PoolMisses
			if c.Failed {
				f.CopyFailures++
			}
			for name, st := range c.Spans {
				if f.Spans == nil {
					f.Spans = map[string]SpanStat{}
				}
				f.Spans[name] = f.Spans[name].add(st)
			}
		}
		n := len(f.Copies)
		if n == 0 {
			continue
		}
		e := PathEntry{Filter: f.Name, Copies: n, MeanBusyNS: f.BusyNS / int64(n)}
		if elapsed > 0 {
			e.BusyShare = float64(f.BusyNS) / float64(n) / elapsed
			e.RecvShare = float64(f.BlockedRecvNS) / float64(n) / elapsed
			e.SendShare = float64(f.StalledSendNS) / float64(n) / elapsed
		}
		r.Summary.Entries = append(r.Summary.Entries, e)
	}
	sort.SliceStable(r.Summary.Entries, func(i, j int) bool {
		return r.Summary.Entries[i].MeanBusyNS > r.Summary.Entries[j].MeanBusyNS
	})
	if len(r.Summary.Entries) > 0 {
		r.Summary.Bottleneck = r.Summary.Entries[0].Filter
	}
}

// Validate reports whether the report carries usable data: a positive
// elapsed time, at least one filter, and nonzero total busy time. The CLIs
// and the CI smoke check use it to fail on empty reports.
func (r *RunReport) Validate() error {
	if r == nil {
		return fmt.Errorf("metrics: nil report")
	}
	if r.ElapsedNS <= 0 {
		return fmt.Errorf("metrics: report has non-positive elapsed time %d", r.ElapsedNS)
	}
	if len(r.Filters) == 0 {
		return fmt.Errorf("metrics: report has no filters")
	}
	var busy int64
	for i := range r.Filters {
		busy += r.Filters[i].BusyNS
	}
	if busy <= 0 {
		return fmt.Errorf("metrics: report has zero total busy time")
	}
	return nil
}

// JSON renders the report as indented JSON.
func (r *RunReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// String renders the report as aligned human-readable tables.
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run report (%s engine): elapsed %v\n", r.Engine, time.Duration(r.ElapsedNS).Round(time.Microsecond))
	fmt.Fprintf(&b, "filters:\n")
	fmt.Fprintf(&b, "  %-6s %-6s %12s %12s %12s %10s %10s %12s %12s\n",
		"name", "copies", "busy-ms", "recv-ms", "stall-ms", "msgs-in", "msgs-out", "bytes-in", "bytes-out")
	for i := range r.Filters {
		f := &r.Filters[i]
		fmt.Fprintf(&b, "  %-6s %-6d %12.2f %12.2f %12.2f %10d %10d %12d %12d\n",
			f.Name, len(f.Copies), ms(f.BusyNS), ms(f.BlockedRecvNS), ms(f.StalledSendNS),
			f.MsgsIn, f.MsgsOut, f.BytesIn, f.BytesOut)
		names := make([]string, 0, len(f.Spans))
		for name := range f.Spans {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := f.Spans[name]
			fmt.Fprintf(&b, "    span %-9s count=%-7d total=%-10.2fms max=%.3fms\n",
				name, st.Count, ms(st.TotalNS), ms(st.MaxNS))
		}
		if f.PoolHits+f.PoolMisses > 0 {
			fmt.Fprintf(&b, "    pool hit=%d miss=%d (%.1f%% hit)\n", f.PoolHits, f.PoolMisses,
				100*float64(f.PoolHits)/float64(f.PoolHits+f.PoolMisses))
		}
		if f.CopyFailures > 0 || f.Redelivered > 0 {
			fmt.Fprintf(&b, "    failover failed-copies=%d redelivered=%d\n", f.CopyFailures, f.Redelivered)
		}
	}
	if len(r.Streams) > 0 {
		fmt.Fprintf(&b, "streams:\n")
		fmt.Fprintf(&b, "  %-22s %-14s %8s %12s %8s %12s\n", "stream", "policy", "buffers", "bytes", "queue<=", "send-wait-ms")
		for _, s := range r.Streams {
			fmt.Fprintf(&b, "  %-22s %-14s %8d %12d %8d %12.2f\n",
				s.From+"."+s.FromPort+"->"+s.To+"."+s.ToPort, s.Policy, s.Buffers, s.Bytes, s.QueueMax, ms(s.SendWaitNS))
		}
	}
	if len(r.Network) > 0 {
		fmt.Fprintf(&b, "network (tcp):\n")
		fmt.Fprintf(&b, "  %-10s %8s %14s %12s %8s %14s %12s\n",
			"link", "msgs->", "wire-bytes->", "send-ms", "msgs<-", "wire-bytes<-", "recv-ms")
		for _, c := range r.Network {
			fmt.Fprintf(&b, "  %3d -> %-3d %8d %14d %12.2f %8d %14d %12.2f\n",
				c.FromNode, c.ToNode, c.MsgsOut, c.WireBytesOut, ms(c.SendNS), c.MsgsIn, c.WireBytesIn, ms(c.RecvNS))
			if c.Retries+c.Redials+c.DupsDropped+c.RecvErrors > 0 {
				fmt.Fprintf(&b, "    retries=%d redials=%d dups-dropped=%d recv-errors=%d\n",
					c.Retries, c.Redials, c.DupsDropped, c.RecvErrors)
			}
			if c.BreakerState != "" || c.BudgetSpent+c.BudgetDenied > 0 {
				fmt.Fprintf(&b, "    breaker=%s trips=%d probes=%d budget-spent=%d budget-denied=%d\n",
					c.BreakerState, c.BreakerTrips, c.BreakerProbes, c.BudgetSpent, c.BudgetDenied)
			}
		}
	}
	if len(r.Backends) > 0 {
		fmt.Fprintf(&b, "backends:\n")
		fmt.Fprintf(&b, "  %-8s %8s %10s %14s %10s %10s %10s %14s\n",
			"scheme", "opens", "reads", "read-bytes", "hits", "misses", "evicts", "fetch-bytes")
		for _, be := range r.Backends {
			fmt.Fprintf(&b, "  %-8s %8d %10d %14d %10d %10d %10d %14d\n",
				be.Scheme, be.Opens, be.Reads, be.ReadBytes,
				be.CacheHits, be.CacheMisses, be.CacheEvictions, be.CacheFetchBytes)
			fmt.Fprintf(&b, "    url %s\n", be.URL)
			if be.BreakerState != "" || be.HedgedReads+be.RetryBudgetSpent+be.RetryBudgetDenied+be.StaleReads > 0 {
				fmt.Fprintf(&b, "    resilience breaker=%s trips=%d probes=%d budget-spent=%d budget-denied=%d hedged=%d hedge-wins=%d stale-reads=%d\n",
					be.BreakerState, be.BreakerTrips, be.BreakerProbes,
					be.RetryBudgetSpent, be.RetryBudgetDenied, be.HedgedReads, be.HedgeWins, be.StaleReads)
			}
		}
	}
	if r.Tuning != nil {
		r.Tuning.render(&b)
	}
	if len(r.Summary.Entries) > 0 {
		fmt.Fprintf(&b, "critical path (per-copy mean shares of elapsed):\n")
		for _, e := range r.Summary.Entries {
			mark := "  "
			if e.Filter == r.Summary.Bottleneck {
				mark = "* "
			}
			fmt.Fprintf(&b, "  %s%-6s copies=%-3d busy=%5.1f%% recv-wait=%5.1f%% send-wait=%5.1f%%\n",
				mark, e.Filter, e.Copies, 100*e.BusyShare, 100*e.RecvShare, 100*e.SendShare)
		}
	}
	return b.String()
}

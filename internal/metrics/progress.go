// Compact progress views.
//
// A Snapshot carries every copy of every filter — the autotune controller
// needs that resolution, but a job-status API does not. Progress collapses
// one snapshot into the handful of monotonic totals a client polls for:
// elapsed wall time, buffers produced, and the busy/blocked/stalled time
// split that says where the pipeline is spending its life. The serve
// daemon attaches one Progress per job status response and event-stream
// tick.

package metrics

// Progress is the compact, JSON-stable summary of one live Snapshot. All
// counters are cumulative since the run started, so deltas between two
// Progress values of the same run are valid rates.
type Progress struct {
	WallNS int64 `json:"wall_ns"`
	// MsgsOut sums buffers produced across every copy of every filter —
	// the same progress measure the autotune controller uses.
	MsgsOut int64 `json:"msgs_out"`
	// BusyNS/BlockedNS/StalledNS sum compute service time, input wait and
	// downstream-credit wait across all copies.
	BusyNS    int64 `json:"busy_ns"`
	BlockedNS int64 `json:"blocked_ns"`
	StalledNS int64 `json:"stalled_ns"`
	// CacheHits/CacheMisses mirror the block-cache counters when a cached
	// backend is attached; both zero otherwise.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// Progress collapses the snapshot into its compact summary. Safe on a nil
// receiver (returns the zero Progress).
func (s *Snapshot) Progress() Progress {
	if s == nil {
		return Progress{}
	}
	p := Progress{
		WallNS:      s.WallNS,
		MsgsOut:     s.TotalMsgsOut(),
		CacheHits:   s.CacheHits,
		CacheMisses: s.CacheMisses,
	}
	for _, f := range s.Filters {
		for _, c := range f.Copies {
			p.BusyNS += c.BusyNS
			p.BlockedNS += c.BlockedRecvNS
			p.StalledNS += c.StalledSendNS
		}
	}
	return p
}

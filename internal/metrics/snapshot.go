// Live snapshots and tuning records.
//
// RunReport is built once, after a run finishes. The autotune controller
// instead needs a consistent mid-run view, sampled every tick without
// perturbing the copies it observes. Snapshot is that view: every field is
// read from an atomic the hot path already maintains (span timers, service
// counters, the blocked/stalled mirrors), so taking one costs a few dozen
// atomic loads and no locks shared with filter goroutines.
//
// The contract the controller depends on (pinned by the snapshot-delta
// tests in internal/filter):
//
//   - Counters and span nanoseconds are monotonic non-decreasing between
//     two snapshots of the same run.
//   - Per-copy identity is stable: filter order follows the spec order of
//     the graph and copy index never changes, so delta(snap2, snap1) can be
//     computed position-wise.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// CopySnap is the live counterpart of CopyReport, restricted to fields the
// runtime maintains atomically.
type CopySnap struct {
	Copy int `json:"copy"`
	Node int `json:"node"`

	// BusyNS is total compute service time; MsgsIn/MsgsOut count messages
	// consumed and produced. BlockedRecvNS and StalledSendNS are cumulative
	// time spent waiting for input and for downstream credit.
	BusyNS        int64 `json:"busy_ns"`
	BlockedRecvNS int64 `json:"blocked_recv_ns"`
	StalledSendNS int64 `json:"stalled_send_ns"`
	MsgsIn        int64 `json:"msgs_in"`
	MsgsOut       int64 `json:"msgs_out"`
	QueueLen      int64 `json:"queue_len"`
}

// FilterSnap groups the live copy states of one logical filter.
type FilterSnap struct {
	Name   string     `json:"name"`
	Copies []CopySnap `json:"copies"`

	// Span nanoseconds summed across copies, keyed by the Span* constants.
	// Timers are cumulative, so deltas between snapshots are valid.
	Spans map[string]int64 `json:"spans,omitempty"`
}

// Snapshot is a consistent-enough mid-run view of pipeline progress: each
// field is individually race-free (atomic), though the set is not a global
// atomic cut — good enough for rate estimation, which is all the
// controller does with it.
type Snapshot struct {
	WallNS  int64        `json:"wall_ns"`
	Filters []FilterSnap `json:"filters"`

	// CacheHits/CacheMisses mirror the block-cache counters when a cached
	// backend is attached; both zero otherwise.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// TotalMsgsOut sums MsgsOut across every copy of every filter — the
// controller's progress measure (work completed, wherever it happens).
func (s *Snapshot) TotalMsgsOut() int64 {
	var n int64
	for _, f := range s.Filters {
		for _, c := range f.Copies {
			n += c.MsgsOut
		}
	}
	return n
}

// SpanNS returns the summed nanoseconds of one span across all filters.
func (s *Snapshot) SpanNS(span string) int64 {
	var n int64
	for _, f := range s.Filters {
		n += f.Spans[span]
	}
	return n
}

// TuningDecision records one controller action: at AtNS into the run, Knob
// moved From→To because of Trigger (the rule that fired) with the metric
// value that justified it.
type TuningDecision struct {
	AtNS    int64   `json:"at_ns"`
	Knob    string  `json:"knob"`
	From    int     `json:"from"`
	To      int     `json:"to"`
	Trigger string  `json:"trigger"`
	Metric  float64 `json:"metric"`
}

// TuningReport is the RunReport section describing what the autotune
// controller did during the run.
type TuningReport struct {
	Seed       int64            `json:"seed"`
	IntervalNS int64            `json:"interval_ns"`
	Decisions  []TuningDecision `json:"decisions"`

	// Final knob values when the run ended, keyed by knob name.
	Final map[string]int `json:"final,omitempty"`
}

func (t *TuningReport) render(b *strings.Builder) {
	fmt.Fprintf(b, "tuning: seed=%d interval=%.0fms decisions=%d\n", t.Seed, ms(t.IntervalNS), len(t.Decisions))
	for _, d := range t.Decisions {
		fmt.Fprintf(b, "  %10.1fms  %-12s %3d -> %-3d  %s (%.3f)\n",
			ms(d.AtNS), d.Knob, d.From, d.To, d.Trigger, d.Metric)
	}
	if len(t.Final) > 0 {
		keys := make([]string, 0, len(t.Final))
		for k := range t.Final {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(b, "  final:")
		for _, k := range keys {
			fmt.Fprintf(b, " %s=%d", k, t.Final[k])
		}
		fmt.Fprintf(b, "\n")
	}
}

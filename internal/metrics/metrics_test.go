package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTimerAndSpan(t *testing.T) {
	var tm Timer
	tm.Add(3 * time.Millisecond)
	tm.Add(5 * time.Millisecond)
	st := tm.Stat()
	if st.Count != 2 {
		t.Fatalf("count = %d, want 2", st.Count)
	}
	if st.TotalNS != int64(8*time.Millisecond) {
		t.Fatalf("total = %d", st.TotalNS)
	}
	if st.MaxNS != int64(5*time.Millisecond) {
		t.Fatalf("max = %d", st.MaxNS)
	}
	sp := tm.Start()
	sp.End()
	if tm.Stat().Count != 3 {
		t.Fatalf("span did not record")
	}
	// Zero span must be a no-op.
	Span{}.End()
}

func TestMaxGauge(t *testing.T) {
	var g MaxGauge
	g.Observe(4)
	g.Observe(2)
	g.Observe(9)
	if g.Load() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Load())
	}
}

func TestNilCopyIsSafe(t *testing.T) {
	var c *Copy
	c.StartRead().End()
	c.StartAssemble().End()
	c.StartCompute().End()
	c.StartEmit().End()
	c.StartWrite().End()
	c.Pool(true)
	if c.Spans() != nil {
		t.Fatalf("nil copy has spans")
	}
	var s *Stream
	s.ObserveSend(10, time.Millisecond, 3)
}

func TestCopySpansSnapshot(t *testing.T) {
	c := &Copy{}
	c.StartCompute().End()
	c.Pool(true)
	c.Pool(false)
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %v, want only compute", spans)
	}
	if spans[SpanCompute].Count != 1 {
		t.Fatalf("compute span missing: %v", spans)
	}
	if c.PoolHit.Load() != 1 || c.PoolMiss.Load() != 1 {
		t.Fatalf("pool counters hit=%d miss=%d", c.PoolHit.Load(), c.PoolMiss.Load())
	}
}

func testReport() *RunReport {
	r := &RunReport{
		Engine:    "local",
		ElapsedNS: int64(10 * time.Millisecond),
		Filters: []FilterReport{
			{Name: "SRC", Copies: []CopyReport{
				{Copy: 0, BusyNS: int64(2 * time.Millisecond), MsgsOut: 4, BytesOut: 100,
					Spans: map[string]SpanStat{SpanRead: {Count: 4, TotalNS: 1e6, MaxNS: 5e5}}},
			}},
			{Name: "HMP", Copies: []CopyReport{
				{Copy: 0, BusyNS: int64(8 * time.Millisecond), MsgsIn: 2, PoolHits: 3, PoolMisses: 1},
				{Copy: 1, BusyNS: int64(6 * time.Millisecond), MsgsIn: 2, PoolHits: 2},
			}},
		},
		Streams: []StreamReport{{From: "SRC", FromPort: "out", To: "HMP", ToPort: "in",
			Policy: "demand-driven", Buffers: 4, Bytes: 100, QueueMax: 2}},
	}
	r.Finalize()
	return r
}

func TestReportFinalize(t *testing.T) {
	r := testReport()
	hmp := r.Filter("HMP")
	if hmp == nil {
		t.Fatal("HMP missing")
	}
	if hmp.BusyNS != int64(14*time.Millisecond) {
		t.Fatalf("HMP busy = %d", hmp.BusyNS)
	}
	if hmp.PoolHits != 5 || hmp.PoolMisses != 1 {
		t.Fatalf("HMP pool hit=%d miss=%d", hmp.PoolHits, hmp.PoolMisses)
	}
	if r.Summary.Bottleneck != "HMP" {
		t.Fatalf("bottleneck = %q, want HMP", r.Summary.Bottleneck)
	}
	// HMP mean busy = 7ms of 10ms elapsed.
	if got := r.Summary.Entries[0].BusyShare; got < 0.69 || got > 0.71 {
		t.Fatalf("HMP busy share = %g, want 0.7", got)
	}
	if got := r.Span("SRC", SpanRead).Count; got != 4 {
		t.Fatalf("SRC read span count = %d", got)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestReportValidateRejectsEmpty(t *testing.T) {
	if err := (&RunReport{}).Validate(); err == nil {
		t.Fatal("empty report validated")
	}
	r := &RunReport{Engine: "local", ElapsedNS: 1, Filters: []FilterReport{{Name: "X"}}}
	if err := r.Validate(); err == nil {
		t.Fatal("zero-busy report validated")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := testReport()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Engine != "local" || len(back.Filters) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Filter("HMP").BusyNS != r.Filter("HMP").BusyNS {
		t.Fatal("busy time lost in round trip")
	}
	if back.Summary.Bottleneck != "HMP" {
		t.Fatal("summary lost in round trip")
	}
}

func TestReportString(t *testing.T) {
	s := testReport().String()
	for _, want := range []string{"HMP", "SRC", "critical path", "demand-driven", "pool hit=5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

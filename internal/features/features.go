// Package features computes Haralick's fourteen textural parameters from a
// gray-level co-occurrence matrix, with computation paths for both the dense
// ("full") and sparse matrix representations studied by the paper.
//
// Conventions:
//   - natural logarithms; 0·log 0 is taken as 0;
//   - the normalized matrix p(i, j) always sums to 1 (the representations in
//     package glcm guarantee identical p across forms);
//   - degenerate denominators (constant regions) yield 0 for the affected
//     feature rather than NaN, so output images remain renderable;
//   - f7 (sum variance) is centered on f6 (sum average), the standard
//     correction of the erratum in Haralick's 1973 paper.
package features

import (
	"fmt"
	"math"
	"strings"

	"haralick4d/internal/glcm"
	"haralick4d/internal/linalg"
)

// Feature identifies one of Haralick's fourteen textural parameters.
type Feature int

// The fourteen parameters, in Haralick's original numbering f1–f14.
const (
	ASM                 Feature = iota // f1: angular second moment (energy)
	Contrast                           // f2
	Correlation                        // f3
	Variance                           // f4: sum of squares: variance
	IDM                                // f5: inverse difference moment
	SumAverage                         // f6
	SumVariance                        // f7
	SumEntropy                         // f8
	Entropy                            // f9
	DifferenceVariance                 // f10
	DifferenceEntropy                  // f11
	InfoCorrelation1                   // f12: information measure of correlation 1
	InfoCorrelation2                   // f13: information measure of correlation 2
	MaxCorrelationCoeff                // f14: maximal correlation coefficient
	NumFeatures         = iota
)

var featureNames = [NumFeatures]string{
	"asm", "contrast", "correlation", "variance", "idm",
	"sum-average", "sum-variance", "sum-entropy", "entropy",
	"difference-variance", "difference-entropy",
	"info-correlation-1", "info-correlation-2", "max-correlation-coeff",
}

// String returns the canonical lower-case hyphenated name of the feature.
func (f Feature) String() string {
	if f < 0 || int(f) >= NumFeatures {
		return fmt.Sprintf("feature(%d)", int(f))
	}
	return featureNames[f]
}

// Parse returns the feature with the given canonical name (see String).
func Parse(name string) (Feature, error) {
	name = strings.ToLower(strings.TrimSpace(name))
	for i, n := range featureNames {
		if n == name {
			return Feature(i), nil
		}
	}
	return 0, fmt.Errorf("features: unknown feature %q", name)
}

// All returns all fourteen features in f1–f14 order.
func All() []Feature {
	fs := make([]Feature, NumFeatures)
	for i := range fs {
		fs[i] = Feature(i)
	}
	return fs
}

// PaperSet returns the four parameters used throughout the paper's
// evaluation — "four of the most computation-expensive parameters":
// Angular Second Moment, Correlation, Sum of Squares, and Inverse
// Difference Moment.
func PaperSet() []Feature {
	return []Feature{ASM, Correlation, Variance, IDM}
}

// need describes which intermediate quantities a feature set requires, so
// that the per-cell work scales with the request.
type need struct {
	basic    bool // ASM, contrast, IDM, entropy, Σij·p
	marginal bool // px, py (correlation, variance, f12–f14)
	sumDiff  bool // p_{x+y}, p_{x−y} histograms (f2, f6–f8, f10, f11)
	hxy      bool // second pass for HXY1/HXY2 (f12, f13)
	q        bool // Q-matrix eigenproblem (f14)
}

func analyze(req []Feature) need {
	var n need
	for _, f := range req {
		switch f {
		case ASM, IDM, Entropy:
			n.basic = true
		case Contrast, SumAverage, SumVariance, SumEntropy, DifferenceVariance, DifferenceEntropy:
			n.sumDiff = true
		case Correlation, Variance:
			n.basic = true
			n.marginal = true
		case InfoCorrelation1, InfoCorrelation2:
			n.basic = true
			n.marginal = true
			n.hxy = true
		case MaxCorrelationCoeff:
			n.marginal = true
			n.q = true
		default:
			panic(fmt.Sprintf("features: invalid feature %d", int(f)))
		}
	}
	return n
}

// acc carries the single-pass accumulations shared by both representations.
type acc struct {
	g       int
	asm     float64
	idm     float64
	entropy float64
	sumIJ   float64 // ΣΣ i·j·p(i,j)
	px, py  []float64
	psum    []float64 // p_{x+y}, index i+j in [0, 2G−2]
	pdiff   []float64 // p_{x−y}, index |i−j| in [0, G−1]
}

func (a *acc) init(g int, n need) {
	a.g = g
	a.asm, a.idm, a.entropy, a.sumIJ = 0, 0, 0, 0
	a.px, a.py, a.psum, a.pdiff = nil, nil, nil, nil
	if n.marginal || n.hxy || n.q {
		a.px = make([]float64, g)
		a.py = make([]float64, g)
	}
	if n.sumDiff {
		a.psum = make([]float64, 2*g-1)
		a.pdiff = make([]float64, g)
	}
}

// reset clears the accumulator for another matrix with the same shape.
func (a *acc) reset() {
	a.asm, a.idm, a.entropy, a.sumIJ = 0, 0, 0, 0
	for i := range a.px {
		a.px[i] = 0
		a.py[i] = 0
	}
	for i := range a.psum {
		a.psum[i] = 0
	}
	for i := range a.pdiff {
		a.pdiff[i] = 0
	}
}

// cell folds one dense cell (i, j) with probability p into the accumulator.
// weight is 1 for a cell visited directly and 2 when a sparse off-diagonal
// entry stands for both mirror cells (every term below is symmetric in i, j).
func (a *acc) cell(i, j int, p, weight float64, n need) {
	wp := weight * p
	if n.basic {
		a.asm += wp * p
		d := i - j
		a.idm += wp / float64(1+d*d)
		a.entropy -= wp * safeLog(p)
		a.sumIJ += wp * float64(i) * float64(j)
	}
	if a.px != nil {
		a.px[i] += p
		a.py[j] += p
		if weight == 2 {
			a.px[j] += p
			a.py[i] += p
		}
	}
	if n.sumDiff {
		a.psum[i+j] += wp
		d := i - j
		if d < 0 {
			d = -d
		}
		a.pdiff[d] += wp
	}
}

func safeLog(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Log(p)
}

// Calculator computes feature vectors from co-occurrence matrices, reusing
// its internal accumulation buffers across matrices. The texture filters
// process tens of thousands of matrices per chunk, so the per-matrix
// allocations of the one-shot FromFull/FromSparse helpers matter; a
// Calculator amortizes them away. Not safe for concurrent use.
type Calculator struct {
	g   int
	req []Feature
	n   need
	a   acc
	out []float64
}

// NewCalculator returns a calculator for matrices with g gray levels
// producing the given feature set.
func NewCalculator(g int, req []Feature) *Calculator {
	c := &Calculator{g: g, req: append([]Feature(nil), req...), n: analyze(req)}
	c.a.init(g, c.n)
	c.out = make([]float64, len(req))
	return c
}

// FromFull computes the requested features from a dense matrix. The
// returned slice is reused by the next call; copy it to retain.
func (c *Calculator) FromFull(m *glcm.Full, zeroSkip bool) ([]float64, error) {
	if m.G != c.g {
		return nil, fmt.Errorf("features: matrix has %d gray levels, calculator %d", m.G, c.g)
	}
	n := c.n
	req := c.req
	out := c.out
	for i := range out {
		out[i] = 0
	}
	if m.Total == 0 {
		return out, nil
	}
	g := m.G
	a := &c.a
	a.reset()
	inv := 1 / float64(m.Total)
	for i := 0; i < g; i++ {
		row := m.Counts[i*g : (i+1)*g]
		for j, c := range row {
			if zeroSkip && c == 0 {
				continue
			}
			a.cell(i, j, float64(c)*inv, 1, n)
		}
	}
	var hxy1, hxy2 float64
	if n.hxy {
		for i := 0; i < g; i++ {
			row := m.Counts[i*g : (i+1)*g]
			for j, c := range row {
				if zeroSkip && c == 0 {
					continue
				}
				p := float64(c) * inv
				q := a.px[i] * a.py[j]
				hxy1 -= p * safeLog(q)
			}
		}
		hxy2 = hxy2Term(a.px, a.py)
	}
	var lambda2 float64
	if n.q {
		var err error
		lambda2, err = qSecondEigenvalue(func(yield func(i, j int, p float64)) {
			for i := 0; i < g; i++ {
				row := m.Counts[i*g : (i+1)*g]
				for j, c := range row {
					if c != 0 {
						yield(i, j, float64(c)*inv)
					}
				}
			}
		}, a.px, a.py, g)
		if err != nil {
			return nil, err
		}
	}
	finish(a, n, hxy1, hxy2, lambda2, req, out)
	return out, nil
}

// FromSparse computes the requested features directly from the sparse
// representation with no conversion back to a dense array ("the matrix can
// be processed directly from the sparse form"). The returned slice is
// reused by the next call; copy it to retain.
func (c *Calculator) FromSparse(s *glcm.Sparse) ([]float64, error) {
	if s.G != c.g {
		return nil, fmt.Errorf("features: matrix has %d gray levels, calculator %d", s.G, c.g)
	}
	n := c.n
	req := c.req
	out := c.out
	for i := range out {
		out[i] = 0
	}
	if s.Total == 0 {
		return out, nil
	}
	g := s.G
	a := &c.a
	a.reset()
	inv := 1 / float64(s.Total)
	for _, e := range s.Entries {
		p := float64(e.Count) * inv
		w := 2.0
		if e.I == e.J {
			w = 1.0
		}
		a.cell(int(e.I), int(e.J), p, w, n)
	}
	var hxy1, hxy2 float64
	if n.hxy {
		for _, e := range s.Entries {
			p := float64(e.Count) * inv
			i, j := int(e.I), int(e.J)
			hxy1 -= p * safeLog(a.px[i]*a.py[j])
			if i != j {
				hxy1 -= p * safeLog(a.px[j]*a.py[i])
			}
		}
		hxy2 = hxy2Term(a.px, a.py)
	}
	var lambda2 float64
	if n.q {
		var err error
		lambda2, err = qSecondEigenvalue(func(yield func(i, j int, p float64)) {
			for _, e := range s.Entries {
				p := float64(e.Count) * inv
				yield(int(e.I), int(e.J), p)
				if e.I != e.J {
					yield(int(e.J), int(e.I), p)
				}
			}
		}, a.px, a.py, g)
		if err != nil {
			return nil, err
		}
	}
	finish(a, n, hxy1, hxy2, lambda2, req, out)
	return out, nil
}

// hxy2Term computes HXY2 = −ΣΣ px(i)py(j)·log(px(i)py(j)) over the marginal
// support. This term depends only on the marginals, so zero-skip does not
// apply to it.
func hxy2Term(px, py []float64) float64 {
	h := 0.0
	for _, pi := range px {
		if pi == 0 {
			continue
		}
		for _, pj := range py {
			if pj == 0 {
				continue
			}
			q := pi * pj
			h -= q * math.Log(q)
		}
	}
	return h
}

// qSecondEigenvalue computes the second largest eigenvalue of the Q matrix,
// Q(i,j) = Σ_k p(i,k)p(j,k)/(px(i)py(k)), needed by f14. Q is similar to the
// symmetric PSD matrix M = B·Bᵀ with B(i,j) = p(i,j)/√(px(i)·py(j)) (the
// similarity is D^(−1/2)·M·D^(1/2) with D = diag(px)), so its eigenvalues are
// real and computable by the Jacobi solver on M, restricted to the support
// of the marginals. cells must yield every non-zero dense cell exactly once.
func qSecondEigenvalue(cells func(yield func(i, j int, p float64)), px, py []float64, g int) (float64, error) {
	// Map gray levels with non-zero marginal mass to compact indices.
	idx := make([]int, g)
	sup := 0
	for i := 0; i < g; i++ {
		if px[i] > 0 {
			idx[i] = sup
			sup++
		} else {
			idx[i] = -1
		}
	}
	if sup < 2 {
		return 0, nil
	}
	// Build B over the support (for a symmetric GLCM, py has the same
	// support as px).
	b := make([][]float64, sup)
	for i := range b {
		b[i] = make([]float64, sup)
	}
	cells(func(i, j int, p float64) {
		bi, bj := idx[i], idx[j]
		if bi < 0 || bj < 0 {
			return
		}
		b[bi][bj] = p / math.Sqrt(px[i]*py[j])
	})
	m := linalg.NewSym(sup)
	for i := 0; i < sup; i++ {
		for j := i; j < sup; j++ {
			sum := 0.0
			for k := 0; k < sup; k++ {
				sum += b[i][k] * b[j][k]
			}
			m.Set(i, j, sum)
		}
	}
	return linalg.SecondLargestEigenvalue(m)
}

// finish derives the requested feature values from the accumulations.
func finish(a *acc, n need, hxy1, hxy2, lambda2 float64, req []Feature, out []float64) {
	var mux, muy, sigx, sigy float64
	if a.px != nil {
		for i, p := range a.px {
			mux += float64(i) * p
			muy += float64(i) * a.py[i]
		}
		for i, p := range a.px {
			d := float64(i) - mux
			sigx += d * d * p
			d = float64(i) - muy
			sigy += d * d * a.py[i]
		}
		sigx = math.Sqrt(sigx)
		sigy = math.Sqrt(sigy)
	}
	var sumAvg, sumVar, sumEnt, contrast, diffEnt, diffMean, diffVar float64
	if n.sumDiff {
		for k, p := range a.psum {
			sumAvg += float64(k) * p
			sumEnt -= p * safeLog(p)
		}
		for k, p := range a.psum {
			d := float64(k) - sumAvg
			sumVar += d * d * p
		}
		for k, p := range a.pdiff {
			contrast += float64(k*k) * p
			diffEnt -= p * safeLog(p)
			diffMean += float64(k) * p
		}
		for k, p := range a.pdiff {
			d := float64(k) - diffMean
			diffVar += d * d * p
		}
	}
	for o, f := range req {
		switch f {
		case ASM:
			out[o] = a.asm
		case Contrast:
			out[o] = contrast
		case Correlation:
			if sigx > 0 && sigy > 0 {
				out[o] = (a.sumIJ - mux*muy) / (sigx * sigy)
			}
		case Variance:
			// Haralick's f4 with μ the mean of the x-marginal.
			v := 0.0
			for i, p := range a.px {
				d := float64(i) - mux
				v += d * d * p
			}
			out[o] = v
		case IDM:
			out[o] = a.idm
		case SumAverage:
			out[o] = sumAvg
		case SumVariance:
			out[o] = sumVar
		case SumEntropy:
			out[o] = sumEnt
		case Entropy:
			out[o] = a.entropy
		case DifferenceVariance:
			out[o] = diffVar
		case DifferenceEntropy:
			out[o] = diffEnt
		case InfoCorrelation1:
			hx, hy := marginalEntropy(a.px), marginalEntropy(a.py)
			if h := math.Max(hx, hy); h > 0 {
				out[o] = (a.entropy - hxy1) / h
			}
		case InfoCorrelation2:
			d := 1 - math.Exp(-2*(hxy2-a.entropy))
			if d < 0 {
				d = 0 // numerical guard; analytically ≥ 0
			}
			out[o] = math.Sqrt(d)
		case MaxCorrelationCoeff:
			if lambda2 < 0 {
				lambda2 = 0
			}
			out[o] = math.Sqrt(lambda2)
		}
	}
}

func marginalEntropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		h -= v * safeLog(v)
	}
	return h
}

// FromFull is the one-shot convenience form of Calculator.FromFull: it
// computes the requested features from a dense matrix, with zeroSkip
// selecting the paper's zero-test optimization. The result is freshly
// allocated and indexed like req.
func FromFull(m *glcm.Full, req []Feature, zeroSkip bool) ([]float64, error) {
	return NewCalculator(m.G, req).FromFull(m, zeroSkip)
}

// FromSparse is the one-shot convenience form of Calculator.FromSparse.
func FromSparse(s *glcm.Sparse, req []Feature) ([]float64, error) {
	return NewCalculator(s.G, req).FromSparse(s)
}

package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"haralick4d/internal/glcm"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// diagonalUniform builds a GLCM concentrated on the diagonal, uniform over k
// gray levels — a perfectly correlated, zero-contrast texture.
func diagonalUniform(g, k int) *glcm.Full {
	m := glcm.NewFull(g)
	for i := 0; i < k; i++ {
		m.Add(uint8(i), uint8(i))
	}
	return m
}

func TestDiagonalUniformAnalytic(t *testing.T) {
	k := 4
	m := diagonalUniform(8, k)
	vals, err := FromFull(m, All(), false)
	if err != nil {
		t.Fatal(err)
	}
	get := func(f Feature) float64 { return vals[int(f)] }

	if !approx(get(ASM), 1.0/float64(k), 1e-12) {
		t.Errorf("ASM = %v, want %v", get(ASM), 1.0/float64(k))
	}
	if !approx(get(Contrast), 0, 1e-12) {
		t.Errorf("Contrast = %v, want 0", get(Contrast))
	}
	if !approx(get(Correlation), 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", get(Correlation))
	}
	if !approx(get(IDM), 1, 1e-12) {
		t.Errorf("IDM = %v, want 1", get(IDM))
	}
	if !approx(get(Entropy), math.Log(float64(k)), 1e-12) {
		t.Errorf("Entropy = %v, want ln %d", get(Entropy), k)
	}
	if !approx(get(MaxCorrelationCoeff), 1, 1e-9) {
		t.Errorf("MCC = %v, want 1", get(MaxCorrelationCoeff))
	}
	// f13 for diagonal-uniform: sqrt(1 − 1/k²).
	want13 := math.Sqrt(1 - 1/float64(k*k))
	if !approx(get(InfoCorrelation2), want13, 1e-12) {
		t.Errorf("f13 = %v, want %v", get(InfoCorrelation2), want13)
	}
	// f12 for diagonal-uniform: (HXY − HXY1)/HX = (ln k − 2 ln k)/ln k = −1.
	if !approx(get(InfoCorrelation1), -1, 1e-12) {
		t.Errorf("f12 = %v, want -1", get(InfoCorrelation1))
	}
}

// independentMatrix builds counts c(i,j) = a(i)·a(j), i.e. p = px·py exactly.
func independentMatrix(a []uint32) *glcm.Full {
	m := glcm.NewFull(len(a))
	var total uint64
	for i := range a {
		for j := range a {
			c := a[i] * a[j]
			m.Counts[i*m.G+j] = c
			total += uint64(c)
		}
	}
	m.Total = total
	return m
}

func TestIndependentMatrixAnalytic(t *testing.T) {
	m := independentMatrix([]uint32{1, 2, 3})
	vals, err := FromFull(m, []Feature{Correlation, InfoCorrelation1, InfoCorrelation2, MaxCorrelationCoeff}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range []Feature{Correlation, InfoCorrelation1, InfoCorrelation2, MaxCorrelationCoeff} {
		// MCC is a square root of an eigenvalue, so numerical noise ε in the
		// eigenproblem shows up as √ε; allow the looser tolerance there.
		tol := 1e-9
		if f == MaxCorrelationCoeff {
			tol = 1e-6
		}
		if !approx(vals[i], 0, tol) {
			t.Errorf("%v = %v, want 0 for independent p", f, vals[i])
		}
	}
}

// haralickExample is the 4×4 image example from Haralick 1973 at 0°.
func haralickExample() *glcm.Full {
	img := []uint8{
		0, 0, 1, 1,
		0, 0, 1, 1,
		0, 2, 2, 2,
		2, 2, 3, 3,
	}
	dims := [4]int{4, 4, 1, 1}
	m := glcm.NewFull(4)
	glcm.ComputeFull(img, glcm.Strides(dims), [4]int{}, dims, []glcm.Direction{{1, 0, 0, 0}}, m)
	return m
}

// TestHaralickExampleAgainstDirectFormulas recomputes each feature with a
// direct, structurally different implementation of the textbook formulas
// and compares against both computation paths.
func TestHaralickExampleAgainstDirectFormulas(t *testing.T) {
	m := haralickExample()
	g := m.G
	p := func(i, j int) float64 { return m.P(i, j) }

	px := make([]float64, g)
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			px[i] += p(i, j)
		}
	}
	var mu, sig float64
	for i := 0; i < g; i++ {
		mu += float64(i) * px[i]
	}
	for i := 0; i < g; i++ {
		sig += (float64(i) - mu) * (float64(i) - mu) * px[i]
	}

	var asm, contrast, idm, entropy, corrNum float64
	for i := 0; i < g; i++ {
		for j := 0; j < g; j++ {
			v := p(i, j)
			asm += v * v
			contrast += float64((i-j)*(i-j)) * v
			idm += v / float64(1+(i-j)*(i-j))
			if v > 0 {
				entropy -= v * math.Log(v)
			}
			corrNum += float64(i)*float64(j)*v - mu*mu*v
		}
	}
	want := map[Feature]float64{
		ASM:      asm,
		Contrast: contrast,
		IDM:      idm,
		Entropy:  entropy,
		Variance: sig,
	}
	if sig > 0 {
		want[Correlation] = corrNum / sig
	}
	// Sanity pin against hand-computed constants from the counts.
	if !approx(asm, 84.0/576.0, 1e-12) {
		t.Fatalf("reference ASM miscomputed: %v", asm)
	}
	if !approx(contrast, 14.0/24.0, 1e-12) {
		t.Fatalf("reference contrast miscomputed: %v", contrast)
	}

	req := []Feature{ASM, Contrast, IDM, Entropy, Variance, Correlation}
	full, err := FromFull(m, req, false)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := FromFull(m, req, true)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FromSparse(m.Sparse(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range req {
		if !approx(full[i], want[f], 1e-12) {
			t.Errorf("FromFull %v = %v, want %v", f, full[i], want[f])
		}
		if !approx(skip[i], want[f], 1e-12) {
			t.Errorf("FromFull(zeroSkip) %v = %v, want %v", f, skip[i], want[f])
		}
		if !approx(sparse[i], want[f], 1e-12) {
			t.Errorf("FromSparse %v = %v, want %v", f, sparse[i], want[f])
		}
	}
}

func randomMatrix(rng *rand.Rand, g, pairs int) *glcm.Full {
	m := glcm.NewFull(g)
	for k := 0; k < pairs; k++ {
		m.Add(uint8(rng.Intn(g)), uint8(rng.Intn(g)))
	}
	return m
}

// Property: all three computation paths (full, full+zero-skip, sparse) agree
// on all fourteen features for random matrices.
func TestPathsAgreeProperty(t *testing.T) {
	f := func(seed int64, pairsRaw uint16, gRaw uint8) bool {
		g := int(gRaw%30) + 2
		pairs := int(pairsRaw%500) + 1
		m := randomMatrix(rand.New(rand.NewSource(seed)), g, pairs)
		a, err1 := FromFull(m, All(), false)
		b, err2 := FromFull(m, All(), true)
		c, err3 := FromSparse(m.Sparse(), All())
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range a {
			scale := math.Max(1, math.Abs(a[i]))
			if math.Abs(a[i]-b[i]) > 1e-10*scale || math.Abs(a[i]-c[i]) > 1e-10*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: feature bounds. ASM ∈ (0,1], entropy ≥ 0, IDM ∈ (0,1],
// correlation ∈ [−1,1], f13 ∈ [0,1], MCC ∈ [0,1] (up to numerical slack).
func TestFeatureBoundsProperty(t *testing.T) {
	f := func(seed int64, pairsRaw uint16) bool {
		m := randomMatrix(rand.New(rand.NewSource(seed)), 16, int(pairsRaw%300)+1)
		v, err := FromFull(m, All(), true)
		if err != nil {
			return false
		}
		eps := 1e-9
		if v[ASM] <= 0 || v[ASM] > 1+eps {
			return false
		}
		if v[Entropy] < -eps {
			return false
		}
		if v[IDM] <= 0 || v[IDM] > 1+eps {
			return false
		}
		if v[Correlation] < -1-eps || v[Correlation] > 1+eps {
			return false
		}
		if v[InfoCorrelation2] < -eps || v[InfoCorrelation2] > 1+eps {
			return false
		}
		if v[MaxCorrelationCoeff] < -eps || v[MaxCorrelationCoeff] > 1+1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ASM, entropy, IDM, contrast are invariant when the ROI's gray
// levels are relabeled by the reversal permutation i → G−1−i (distance-
// preserving), while correlation is also preserved by this particular map.
func TestReversalInvarianceProperty(t *testing.T) {
	f := func(seed int64, pairsRaw uint16) bool {
		g := 12
		rng := rand.New(rand.NewSource(seed))
		pairs := int(pairsRaw%300) + 1
		m := glcm.NewFull(g)
		r := glcm.NewFull(g)
		for k := 0; k < pairs; k++ {
			a, b := uint8(rng.Intn(g)), uint8(rng.Intn(g))
			m.Add(a, b)
			r.Add(uint8(g-1)-a, uint8(g-1)-b)
		}
		req := []Feature{ASM, Entropy, IDM, Contrast, Correlation, MaxCorrelationCoeff}
		v1, err1 := FromFull(m, req, true)
		v2, err2 := FromFull(r, req, true)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range v1 {
			if math.Abs(v1[i]-v2[i]) > 1e-9*math.Max(1, math.Abs(v1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyMatrix(t *testing.T) {
	for _, vals := range [][]float64{
		must(FromFull(glcm.NewFull(8), All(), false)),
		must(FromFull(glcm.NewFull(8), All(), true)),
		must(FromSparse(glcm.NewSparse(8), All())),
	} {
		for i, v := range vals {
			if v != 0 {
				t.Errorf("empty matrix feature %v = %v, want 0", Feature(i), v)
			}
		}
	}
}

func must(v []float64, err error) []float64 {
	if err != nil {
		panic(err)
	}
	return v
}

func TestConstantRegionDegenerate(t *testing.T) {
	// All mass at a single gray level: σ = 0, correlation must be 0, not NaN.
	m := glcm.NewFull(8)
	for k := 0; k < 10; k++ {
		m.Add(3, 3)
	}
	v, err := FromFull(m, All(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("feature %v is %v on constant region", Feature(i), x)
		}
	}
	if v[Correlation] != 0 {
		t.Errorf("Correlation = %v, want 0 on constant region", v[Correlation])
	}
	if v[ASM] != 1 {
		t.Errorf("ASM = %v, want 1 on constant region", v[ASM])
	}
}

func TestFeatureStringParse(t *testing.T) {
	for i := 0; i < NumFeatures; i++ {
		f := Feature(i)
		got, err := Parse(f.String())
		if err != nil || got != f {
			t.Errorf("Parse(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse accepted bogus name")
	}
	if Feature(99).String() != "feature(99)" {
		t.Error("out-of-range String")
	}
}

func TestPaperSet(t *testing.T) {
	ps := PaperSet()
	want := []Feature{ASM, Correlation, Variance, IDM}
	if len(ps) != len(want) {
		t.Fatalf("PaperSet size %d", len(ps))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("PaperSet[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
}

func TestInvalidFeaturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid feature")
		}
	}()
	_, _ = FromFull(glcm.NewFull(4), []Feature{Feature(42)}, false)
}

func BenchmarkFromFullNoSkip(b *testing.B)   { benchFeatures(b, "full") }
func BenchmarkFromFullZeroSkip(b *testing.B) { benchFeatures(b, "skip") }
func BenchmarkFromSparse(b *testing.B)       { benchFeatures(b, "sparse") }

func benchFeatures(b *testing.B, mode string) {
	// A sparse-ish matrix typical of a requantized MRI ROI: ~12 distinct
	// gray pairs at G=32.
	rng := rand.New(rand.NewSource(9))
	m := glcm.NewFull(32)
	for k := 0; k < 700; k++ {
		base := rng.Intn(6) + 10
		m.Add(uint8(base), uint8(base+rng.Intn(3)))
	}
	sp := m.Sparse()
	req := PaperSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		switch mode {
		case "full":
			_, err = FromFull(m, req, false)
		case "skip":
			_, err = FromFull(m, req, true)
		case "sparse":
			_, err = FromSparse(sp, req)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

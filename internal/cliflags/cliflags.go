// Package cliflags holds flag-parsing helpers shared by the command-line
// tools, so the two binaries that expose the checkpoint/watchdog surface
// validate it identically.
package cliflags

import (
	"fmt"
	"time"

	"haralick4d/internal/dataset"
	"haralick4d/internal/resilience"
)

// ParseRestartFlags validates the checkpoint/restart and watchdog flag
// subset and converts the duration strings. Empty strings select the
// defaults: interval 0 (the journal's own 1s default) and stall 0
// (watchdog disabled). Violations are usage errors — the CLIs print them
// with flag.Usage() and exit 2.
func ParseRestartFlags(checkpoint string, resume bool, intervalS, stallS string) (interval, stall time.Duration, err error) {
	if resume && checkpoint == "" {
		return 0, 0, fmt.Errorf("-resume requires -checkpoint with the journal path of the interrupted run")
	}
	if intervalS != "" {
		if checkpoint == "" {
			return 0, 0, fmt.Errorf("-checkpoint-interval without -checkpoint has nothing to sync")
		}
		d, perr := time.ParseDuration(intervalS)
		if perr != nil {
			return 0, 0, fmt.Errorf("invalid -checkpoint-interval %q: %v", intervalS, perr)
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("-checkpoint-interval must be positive, got %s", d)
		}
		interval = d
	}
	if stallS != "" {
		d, perr := time.ParseDuration(stallS)
		if perr != nil {
			return 0, 0, fmt.Errorf("invalid -stall-timeout %q: %v", stallS, perr)
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("-stall-timeout must be positive, got %s", d)
		}
		stall = d
	}
	return interval, stall, nil
}

// ParseBackendFlags validates the dataset-backend flag subset: the dataset
// URL (-dataset-url, or a positional directory) and the block-cache sizing
// (-cache-blocks, -cache-block-size). Violations are usage errors — the CLIs
// print them with flag.Usage() and exit 2. Returns the URL options to pass
// to dataset.OpenURL.
func ParseBackendFlags(url string, cacheBlocks, cacheBlockSize int) (*dataset.URLOptions, error) {
	if _, _, err := dataset.ParseURL(url); err != nil {
		return nil, err
	}
	if cacheBlocks < 0 {
		return nil, fmt.Errorf("-cache-blocks must not be negative, got %d", cacheBlocks)
	}
	if cacheBlockSize < 0 {
		return nil, fmt.Errorf("-cache-block-size must not be negative, got %d", cacheBlockSize)
	}
	if cacheBlockSize > 0 && cacheBlocks == 0 {
		return nil, fmt.Errorf("-cache-block-size without -cache-blocks has no cache to size")
	}
	return &dataset.URLOptions{CacheBlocks: cacheBlocks, CacheBlockSize: cacheBlockSize}, nil
}

// ParseResilienceFlags validates the resilience flag subset shared by the
// analysis CLI and the daemon: -breaker "consec[,open-for[,window,rate]]",
// -retry-budget "tokens[,ratio]", -hedge-after and -deadline duration
// strings. Empty strings disable each primitive; a policy with nothing
// enabled comes back nil so callers can pass it straight through. Violations
// are usage errors — the CLIs print them with flag.Usage() and exit 2.
func ParseResilienceFlags(breakerS, budgetS, hedgeS, deadlineS string) (pol *resilience.Policy, deadline time.Duration, err error) {
	var p resilience.Policy
	if p.Breaker, err = resilience.ParseBreaker(breakerS); err != nil {
		return nil, 0, fmt.Errorf("-breaker: %v", err)
	}
	if p.Budget, err = resilience.ParseBudget(budgetS); err != nil {
		return nil, 0, fmt.Errorf("-retry-budget: %v", err)
	}
	if hedgeS != "" && hedgeS != "0" {
		d, perr := time.ParseDuration(hedgeS)
		if perr != nil || d <= 0 {
			return nil, 0, fmt.Errorf("invalid -hedge-after %q (want a positive duration like 200ms)", hedgeS)
		}
		p.HedgeAfter = d
	}
	if deadlineS != "" && deadlineS != "0" {
		d, perr := time.ParseDuration(deadlineS)
		if perr != nil || d <= 0 {
			return nil, 0, fmt.Errorf("invalid -deadline %q (want a positive duration like 10m)", deadlineS)
		}
		deadline = d
	}
	if p.Enabled() {
		pol = &p
	}
	return pol, deadline, nil
}

// ServeFlags is the validated `haralick4d serve` flag set.
type ServeFlags struct {
	Addr           string
	StateDir       string
	MaxJobs        int
	MaxQueue       int
	TotalReadAhead int
	TotalWorkers   int
	JobReadAhead   int
	JobWorkers     int
	DrainTimeout   time.Duration
	StallTimeout   time.Duration
	// Resilience is filled by the caller from ParseResilienceFlags; it is
	// carried here so the serve path hands one struct to server.Config.
	Resilience *resilience.Policy
}

// ParseServeFlags validates the daemon flag subset and converts the
// duration strings. Zero counts select the server package's documented
// defaults; violations are usage errors (print with flag.Usage(), exit 2).
func ParseServeFlags(addr, stateDir string, maxJobs, maxQueue, totalRA, totalWorkers, jobRA, jobWorkers int, drainS, stallS string) (*ServeFlags, error) {
	if addr == "" {
		return nil, fmt.Errorf("-serve-addr is required (e.g. localhost:7474)")
	}
	if stateDir == "" {
		return nil, fmt.Errorf("-state-dir is required: it holds the job journal the daemon recovers from")
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"-max-jobs", maxJobs}, {"-max-queue", maxQueue},
		{"-total-readahead", totalRA}, {"-total-workers", totalWorkers},
		{"-job-quota-readahead", jobRA}, {"-job-quota-workers", jobWorkers},
	} {
		if c.v < 0 {
			return nil, fmt.Errorf("%s must not be negative, got %d", c.name, c.v)
		}
	}
	sf := &ServeFlags{
		Addr: addr, StateDir: stateDir,
		MaxJobs: maxJobs, MaxQueue: maxQueue,
		TotalReadAhead: totalRA, TotalWorkers: totalWorkers,
		JobReadAhead: jobRA, JobWorkers: jobWorkers,
	}
	if drainS != "" {
		d, err := time.ParseDuration(drainS)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("invalid -drain-timeout %q (want a positive duration like 30s)", drainS)
		}
		sf.DrainTimeout = d
	}
	if stallS != "" {
		d, err := time.ParseDuration(stallS)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("invalid -stall-timeout %q (want a positive duration like 2m)", stallS)
		}
		sf.StallTimeout = d
	}
	return sf, nil
}

// Package cliflags holds flag-parsing helpers shared by the command-line
// tools, so the two binaries that expose the checkpoint/watchdog surface
// validate it identically.
package cliflags

import (
	"fmt"
	"time"

	"haralick4d/internal/dataset"
)

// ParseRestartFlags validates the checkpoint/restart and watchdog flag
// subset and converts the duration strings. Empty strings select the
// defaults: interval 0 (the journal's own 1s default) and stall 0
// (watchdog disabled). Violations are usage errors — the CLIs print them
// with flag.Usage() and exit 2.
func ParseRestartFlags(checkpoint string, resume bool, intervalS, stallS string) (interval, stall time.Duration, err error) {
	if resume && checkpoint == "" {
		return 0, 0, fmt.Errorf("-resume requires -checkpoint with the journal path of the interrupted run")
	}
	if intervalS != "" {
		if checkpoint == "" {
			return 0, 0, fmt.Errorf("-checkpoint-interval without -checkpoint has nothing to sync")
		}
		d, perr := time.ParseDuration(intervalS)
		if perr != nil {
			return 0, 0, fmt.Errorf("invalid -checkpoint-interval %q: %v", intervalS, perr)
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("-checkpoint-interval must be positive, got %s", d)
		}
		interval = d
	}
	if stallS != "" {
		d, perr := time.ParseDuration(stallS)
		if perr != nil {
			return 0, 0, fmt.Errorf("invalid -stall-timeout %q: %v", stallS, perr)
		}
		if d <= 0 {
			return 0, 0, fmt.Errorf("-stall-timeout must be positive, got %s", d)
		}
		stall = d
	}
	return interval, stall, nil
}

// ParseBackendFlags validates the dataset-backend flag subset: the dataset
// URL (-dataset-url, or a positional directory) and the block-cache sizing
// (-cache-blocks, -cache-block-size). Violations are usage errors — the CLIs
// print them with flag.Usage() and exit 2. Returns the URL options to pass
// to dataset.OpenURL.
func ParseBackendFlags(url string, cacheBlocks, cacheBlockSize int) (*dataset.URLOptions, error) {
	if _, _, err := dataset.ParseURL(url); err != nil {
		return nil, err
	}
	if cacheBlocks < 0 {
		return nil, fmt.Errorf("-cache-blocks must not be negative, got %d", cacheBlocks)
	}
	if cacheBlockSize < 0 {
		return nil, fmt.Errorf("-cache-block-size must not be negative, got %d", cacheBlockSize)
	}
	if cacheBlockSize > 0 && cacheBlocks == 0 {
		return nil, fmt.Errorf("-cache-block-size without -cache-blocks has no cache to size")
	}
	return &dataset.URLOptions{CacheBlocks: cacheBlocks, CacheBlockSize: cacheBlockSize}, nil
}

// ServeFlags is the validated `haralick4d serve` flag set.
type ServeFlags struct {
	Addr           string
	StateDir       string
	MaxJobs        int
	MaxQueue       int
	TotalReadAhead int
	TotalWorkers   int
	JobReadAhead   int
	JobWorkers     int
	DrainTimeout   time.Duration
	StallTimeout   time.Duration
}

// ParseServeFlags validates the daemon flag subset and converts the
// duration strings. Zero counts select the server package's documented
// defaults; violations are usage errors (print with flag.Usage(), exit 2).
func ParseServeFlags(addr, stateDir string, maxJobs, maxQueue, totalRA, totalWorkers, jobRA, jobWorkers int, drainS, stallS string) (*ServeFlags, error) {
	if addr == "" {
		return nil, fmt.Errorf("-serve-addr is required (e.g. localhost:7474)")
	}
	if stateDir == "" {
		return nil, fmt.Errorf("-state-dir is required: it holds the job journal the daemon recovers from")
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"-max-jobs", maxJobs}, {"-max-queue", maxQueue},
		{"-total-readahead", totalRA}, {"-total-workers", totalWorkers},
		{"-job-quota-readahead", jobRA}, {"-job-quota-workers", jobWorkers},
	} {
		if c.v < 0 {
			return nil, fmt.Errorf("%s must not be negative, got %d", c.name, c.v)
		}
	}
	sf := &ServeFlags{
		Addr: addr, StateDir: stateDir,
		MaxJobs: maxJobs, MaxQueue: maxQueue,
		TotalReadAhead: totalRA, TotalWorkers: totalWorkers,
		JobReadAhead: jobRA, JobWorkers: jobWorkers,
	}
	if drainS != "" {
		d, err := time.ParseDuration(drainS)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("invalid -drain-timeout %q (want a positive duration like 30s)", drainS)
		}
		sf.DrainTimeout = d
	}
	if stallS != "" {
		d, err := time.ParseDuration(stallS)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("invalid -stall-timeout %q (want a positive duration like 2m)", stallS)
		}
		sf.StallTimeout = d
	}
	return sf, nil
}

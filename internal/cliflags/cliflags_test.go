package cliflags

import (
	"strings"
	"testing"
	"time"
)

func TestParseRestartFlags(t *testing.T) {
	cases := []struct {
		name                 string
		checkpoint           string
		resume               bool
		intervalS, stallS    string
		wantInterval, wantSt time.Duration
		wantErr              string
	}{
		{name: "all-defaults"},
		{name: "checkpoint-only", checkpoint: "j"},
		{name: "resume", checkpoint: "j", resume: true},
		{name: "interval", checkpoint: "j", intervalS: "250ms", wantInterval: 250 * time.Millisecond},
		{name: "stall", stallS: "2m", wantSt: 2 * time.Minute},
		{name: "resume-without-checkpoint", resume: true, wantErr: "-resume requires -checkpoint"},
		{name: "interval-without-checkpoint", intervalS: "1s", wantErr: "-checkpoint-interval without -checkpoint"},
		{name: "zero-interval", checkpoint: "j", intervalS: "0s", wantErr: "-checkpoint-interval must be positive"},
		{name: "negative-interval", checkpoint: "j", intervalS: "-1s", wantErr: "-checkpoint-interval must be positive"},
		{name: "garbage-interval", checkpoint: "j", intervalS: "soon", wantErr: "invalid -checkpoint-interval"},
		{name: "zero-stall", stallS: "0s", wantErr: "-stall-timeout must be positive"},
		{name: "negative-stall", stallS: "-5s", wantErr: "-stall-timeout must be positive"},
		{name: "garbage-stall", stallS: "whenever", wantErr: "invalid -stall-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interval, stall, err := ParseRestartFlags(tc.checkpoint, tc.resume, tc.intervalS, tc.stallS)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if interval != tc.wantInterval || stall != tc.wantSt {
				t.Fatalf("got (%s, %s), want (%s, %s)", interval, stall, tc.wantInterval, tc.wantSt)
			}
		})
	}
}

package cliflags

import (
	"strings"
	"testing"
	"time"
)

func TestParseRestartFlags(t *testing.T) {
	cases := []struct {
		name                 string
		checkpoint           string
		resume               bool
		intervalS, stallS    string
		wantInterval, wantSt time.Duration
		wantErr              string
	}{
		{name: "all-defaults"},
		{name: "checkpoint-only", checkpoint: "j"},
		{name: "resume", checkpoint: "j", resume: true},
		{name: "interval", checkpoint: "j", intervalS: "250ms", wantInterval: 250 * time.Millisecond},
		{name: "stall", stallS: "2m", wantSt: 2 * time.Minute},
		{name: "resume-without-checkpoint", resume: true, wantErr: "-resume requires -checkpoint"},
		{name: "interval-without-checkpoint", intervalS: "1s", wantErr: "-checkpoint-interval without -checkpoint"},
		{name: "zero-interval", checkpoint: "j", intervalS: "0s", wantErr: "-checkpoint-interval must be positive"},
		{name: "negative-interval", checkpoint: "j", intervalS: "-1s", wantErr: "-checkpoint-interval must be positive"},
		{name: "garbage-interval", checkpoint: "j", intervalS: "soon", wantErr: "invalid -checkpoint-interval"},
		{name: "zero-stall", stallS: "0s", wantErr: "-stall-timeout must be positive"},
		{name: "negative-stall", stallS: "-5s", wantErr: "-stall-timeout must be positive"},
		{name: "garbage-stall", stallS: "whenever", wantErr: "invalid -stall-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			interval, stall, err := ParseRestartFlags(tc.checkpoint, tc.resume, tc.intervalS, tc.stallS)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if interval != tc.wantInterval || stall != tc.wantSt {
				t.Fatalf("got (%s, %s), want (%s, %s)", interval, stall, tc.wantInterval, tc.wantSt)
			}
		})
	}
}

func TestParseServeFlags(t *testing.T) {
	sf, err := ParseServeFlags("localhost:0", "/tmp/state", 2, 8, 64, 4, 16, 4, "45s", "2m")
	if err != nil {
		t.Fatal(err)
	}
	if sf.DrainTimeout != 45*time.Second || sf.StallTimeout != 2*time.Minute || sf.MaxJobs != 2 {
		t.Fatalf("parsed %+v", sf)
	}
	// Zero counts are valid: they select the server package defaults.
	if _, err := ParseServeFlags("localhost:0", "/tmp/state", 0, 0, 0, 0, 0, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		f       func() (*ServeFlags, error)
		wantErr string
	}{
		{"no-addr", func() (*ServeFlags, error) {
			return ParseServeFlags("", "/s", 0, 0, 0, 0, 0, 0, "", "")
		}, "-serve-addr is required"},
		{"no-state-dir", func() (*ServeFlags, error) {
			return ParseServeFlags("localhost:0", "", 0, 0, 0, 0, 0, 0, "", "")
		}, "-state-dir is required"},
		{"negative-quota", func() (*ServeFlags, error) {
			return ParseServeFlags("localhost:0", "/s", 0, 0, 0, 0, -1, 0, "", "")
		}, "-job-quota-readahead must not be negative"},
		{"bad-drain", func() (*ServeFlags, error) {
			return ParseServeFlags("localhost:0", "/s", 0, 0, 0, 0, 0, 0, "eventually", "")
		}, "invalid -drain-timeout"},
		{"zero-drain", func() (*ServeFlags, error) {
			return ParseServeFlags("localhost:0", "/s", 0, 0, 0, 0, 0, 0, "0s", "")
		}, "invalid -drain-timeout"},
		{"bad-stall", func() (*ServeFlags, error) {
			return ParseServeFlags("localhost:0", "/s", 0, 0, 0, 0, 0, 0, "", "-3s")
		}, "invalid -stall-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.f(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

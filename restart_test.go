package haralick4d

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestAnalyzeDatasetCheckpointResume drives the checkpoint/restart flow
// through the façade: a checkpointed run, then a resume against its complete
// journal, must produce bit-identical grids while recovering every chunk
// from the journal instead of recomputing.
func TestAnalyzeDatasetCheckpointResume(t *testing.T) {
	dir, _ := chaosDataset(t, false)
	ref, err := AnalyzeDataset(dir, smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	opts := smallOpts(3)
	opts.Checkpoint = ckpt
	res, err := AnalyzeDataset(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restart != nil {
		t.Fatal("fresh checkpointed run populated Result.Restart")
	}
	for f, want := range ref.Grids {
		got := res.Grids[f]
		if got == nil {
			t.Fatalf("%v: missing grid", f)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%v: voxel %d differs under checkpointing", f, i)
			}
		}
	}

	ropts := smallOpts(3)
	ropts.Checkpoint = ckpt
	ropts.Resume = true
	res2, err := AnalyzeDataset(dir, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Restart == nil {
		t.Fatal("resumed run did not populate Result.Restart")
	}
	if res2.Restart.SkippedChunks != res2.Restart.TotalChunks || res2.Restart.TotalChunks == 0 {
		t.Fatalf("resume against a complete journal skipped %d/%d chunks",
			res2.Restart.SkippedChunks, res2.Restart.TotalChunks)
	}
	if res2.Restart.Portions == 0 || res2.Restart.Voxels == 0 {
		t.Fatalf("resume recovered nothing: %+v", res2.Restart)
	}
	for f, want := range ref.Grids {
		got := res2.Grids[f]
		if got == nil {
			t.Fatalf("%v: missing grid after resume", f)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%v: voxel %d differs after resume", f, i)
			}
		}
	}
}

// TestCheckpointResumeConfigMismatch: resuming with changed analysis
// options must fail with ErrCheckpointMismatch.
func TestCheckpointResumeConfigMismatch(t *testing.T) {
	dir, _ := chaosDataset(t, false)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	opts := smallOpts(3)
	opts.Checkpoint = ckpt
	if _, err := AnalyzeDataset(dir, opts); err != nil {
		t.Fatal(err)
	}
	bad := smallOpts(3)
	bad.GrayLevels = 8
	bad.Checkpoint = ckpt
	bad.Resume = true
	if _, err := AnalyzeDataset(dir, bad); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resume with changed options: err = %v, want ErrCheckpointMismatch", err)
	}
}

// TestRestartOptionValidation covers the option-combination errors of the
// checkpoint/watchdog subset.
func TestRestartOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"resume-without-checkpoint", func(o *Options) { o.Resume = true }, "Resume requires"},
		{"negative-interval", func(o *Options) { o.Checkpoint = "j"; o.CheckpointInterval = -1 }, "CheckpointInterval"},
		{"interval-without-checkpoint", func(o *Options) { o.CheckpointInterval = 1 }, "CheckpointInterval"},
		{"negative-stall", func(o *Options) { o.StallTimeout = -1 }, "StallTimeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := smallOpts(1)
			tc.mut(o)
			err := o.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestAnalyzeRejectsCheckpoint: the in-memory path has no disk inputs to
// re-read on a later life, so checkpointing must be refused, not ignored.
func TestAnalyzeRejectsCheckpoint(t *testing.T) {
	opts := smallOpts(1)
	opts.Checkpoint = filepath.Join(t.TempDir(), "j")
	_, err := Analyze(phantom(t), opts)
	if err == nil || !strings.Contains(err.Error(), "disk-resident") {
		t.Fatalf("Analyze with Checkpoint: err = %v, want disk-resident rejection", err)
	}
}

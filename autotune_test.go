package haralick4d

import (
	"testing"
	"time"
)

// tuneOpts is smallOpts with live tuning on: a fast sampling interval so
// even a sub-second test run gives the controller several ticks.
func tuneOpts(par int) *Options {
	o := smallOpts(par)
	o.AutoTune = true
	o.AutoTuneInterval = 2 * time.Millisecond
	o.AutoTuneSeed = 7
	o.ReadAhead = 2
	return o
}

// TestAutoTuneBitIdentical is the tentpole's correctness contract: live
// tuning turns scheduling knobs only (prefetch depth, compute admission),
// never routing or values, so a tuned run's grids are bit-identical to the
// untuned sequential oracle — and the report carries the decision log.
func TestAutoTuneBitIdentical(t *testing.T) {
	v := phantom(t)
	dir := t.TempDir()
	if err := WriteDataset(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	oracle, err := AnalyzeDataset(dir, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := AnalyzeDataset(dir, tuneOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range PaperFeatures() {
		a, b := oracle.Grids[f], tuned.Grids[f]
		if a.Dims != b.Dims {
			t.Fatalf("%v dims differ: %v vs %v", f, a.Dims, b.Dims)
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%v voxel %d differs between untuned and autotuned runs", f, i)
			}
		}
	}
	if tuned.Report == nil || tuned.Report.Tuning == nil {
		t.Fatal("autotuned run report carries no Tuning section")
	}
	tr := tuned.Report.Tuning
	if len(tr.Decisions) == 0 {
		t.Fatal("Tuning.Decisions empty: init records must always be present")
	}
	if tr.Seed != 7 || tr.IntervalNS != int64(2*time.Millisecond) {
		t.Fatalf("Tuning header = seed %d interval %d", tr.Seed, tr.IntervalNS)
	}
	if len(tr.Final) == 0 {
		t.Fatal("Tuning.Final empty: knob values must be reported")
	}
	if _, ok := tr.Final["readahead"]; !ok {
		t.Fatalf("readahead knob missing from Final: %v", tr.Final)
	}
	// The untuned oracle must stay untouched by the feature.
	if oracle.Report != nil && oracle.Report.Tuning != nil {
		t.Fatal("untuned run grew a Tuning section")
	}
}

// TestAutoTuneInMemory covers the Analyze (in-memory) parallel path: same
// bit-identical contract against the sequential oracle, which ignores
// AutoTune by design (workers=1 runs the plain sequential core).
func TestAutoTuneInMemory(t *testing.T) {
	v := phantom(t)
	seq, err := Analyze(v, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := Analyze(v, tuneOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range PaperFeatures() {
		a, b := seq.Grids[f], tuned.Grids[f]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%v voxel %d differs between sequential and autotuned runs", f, i)
			}
		}
	}
	if tuned.Report == nil || tuned.Report.Tuning == nil || len(tuned.Report.Tuning.Decisions) == 0 {
		t.Fatal("autotuned in-memory run carries no tuning decisions")
	}
	// Sequential path: AutoTune flags are accepted but the sequential core
	// has no pipeline to tune — the result must stay the oracle.
	seqTuned, err := Analyze(v, func() *Options { o := tuneOpts(1); o.ReadAhead = 0; return o }())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range PaperFeatures() {
		a, b := seq.Grids[f], seqTuned.Grids[f]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%v voxel %d: workers=1 with AutoTune diverged from the oracle", f, i)
			}
		}
	}
}

// TestAutoTuneValidation pins the option cross-checks.
func TestAutoTuneValidation(t *testing.T) {
	v := phantom(t)
	bad := []*Options{
		func() *Options { o := smallOpts(2); o.AutoTuneInterval = -time.Second; return o }(),
		func() *Options { o := smallOpts(2); o.AutoTuneInterval = time.Second; return o }(), // without AutoTune
		func() *Options { o := smallOpts(2); o.AutoTuneSeed = 5; return o }(),               // without AutoTune
		func() *Options { o := tuneOpts(2); o.DisableMetrics = true; return o }(),
	}
	for i, o := range bad {
		if _, err := Analyze(v, o); err == nil {
			t.Errorf("case %d: invalid autotune options accepted", i)
		}
	}
}

package haralick4d

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestWriteRestartBenchJSON measures the cost of the robustness layer on a
// healthy run — checkpoint journaling and the stall watchdog against the
// plain pipeline — and writes the numbers to the path in
// HARALICK4D_BENCH_RESTART_OUT; used to produce the committed
// BENCH_restart.json:
//
//	HARALICK4D_BENCH_RESTART_OUT=$PWD/BENCH_restart.json go test -run TestWriteRestartBenchJSON
func TestWriteRestartBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_RESTART_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_RESTART_OUT to regenerate BENCH_restart.json")
	}
	dir := t.TempDir()
	v := GeneratePhantom(PhantomConfig{Dims: [4]int{48, 48, 8, 8}, Seed: 11})
	if err := WriteDataset(dir, v, 3); err != nil {
		t.Fatal(err)
	}
	baseOpts := func() *Options {
		return &Options{ROI: [4]int{5, 5, 2, 2}, GrayLevels: 16, Parallelism: 3}
	}

	// measure reports the min-of-3 wall time of one configuration; pipeline
	// runs carry scheduler noise a single sample does not suppress.
	measure := func(mut func(run int, o *Options)) int64 {
		t.Helper()
		var best int64
		for i := 0; i < 3; i++ {
			runtime.GC()
			opts := baseOpts()
			mut(i, opts)
			start := time.Now()
			if _, err := AnalyzeDataset(dir, opts); err != nil {
				t.Fatal(err)
			}
			if ns := int64(time.Since(start)); i == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	ckptDir := t.TempDir()
	off := measure(func(int, *Options) {})
	on := measure(func(run int, o *Options) {
		o.Checkpoint = filepath.Join(ckptDir, "bench.ckpt")
	})
	watchdog := measure(func(run int, o *Options) {
		o.Checkpoint = filepath.Join(ckptDir, "bench-wd.ckpt")
		o.StallTimeout = time.Minute
	})

	overhead := func(ns int64) float64 { return float64(ns)/float64(off) - 1 }
	t.Logf("checkpoint off %d ns, on %d ns (%+.1f%%), +watchdog %d ns (%+.1f%%)",
		off, on, 100*overhead(on), watchdog, 100*overhead(watchdog))

	doc := struct {
		GeneratedBy string         `json:"generated_by"`
		Host        map[string]any `json:"host"`
		Workload    string         `json:"workload"`
		Results     map[string]any `json:"results"`
		Notes       []string       `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteRestartBenchJSON (HARALICK4D_BENCH_RESTART_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload: "48x48x8x8 phantom on 3 storage nodes, ROI 5x5x2x2, G=16, paper features, AnalyzeDataset with Parallelism 3 on the local engine",
		Results: map[string]any{
			"checkpoint_off_ns":               off,
			"checkpoint_on_ns":                on,
			"checkpoint_watchdog_ns":          watchdog,
			"checkpoint_overhead_fraction":    overhead(on),
			"with_watchdog_overhead_fraction": overhead(watchdog),
		},
		Notes: []string{
			"each figure is the min of 3 end-to-end AnalyzeDataset wall times on a healthy (never crashing, never stalling) run",
			"checkpoint_on journals every output portion with a 1s fsync interval; with_watchdog also arms a 1-minute stall deadline",
			"overhead fractions are relative to checkpoint_off; values within run-to-run noise of 0 confirm the robustness layer is free when idle",
			"outputs are bit-identical across all three configurations (TestAnalyzeDatasetCheckpointResume)",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

package haralick4d

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestOptionsValidate(t *testing.T) {
	// The zero value selects the documented defaults and must validate.
	var o Options
	if err := o.Validate(); err != nil {
		t.Fatalf("zero-value options rejected: %v", err)
	}
	if o.ROI != [4]int{} || o.GrayLevels != 0 || o.NDim != 0 || o.Distance != 0 || o.Features != nil {
		t.Error("Validate modified the options")
	}
	// A nil receiver behaves like the zero value (Analyze accepts nil opts).
	if err := (*Options)(nil).Validate(); err != nil {
		t.Fatalf("nil options rejected: %v", err)
	}
	// Validate must return the same error the analysis entry points do.
	bad := &Options{GrayLevels: 1}
	verr := bad.Validate()
	if verr == nil {
		t.Fatal("GrayLevels 1 accepted")
	}
	_, aerr := Analyze(NewVolume([4]int{8, 8, 2, 2}), bad)
	if aerr == nil || aerr.Error() != verr.Error() {
		t.Errorf("Analyze error %q != Validate error %q", aerr, verr)
	}
	if err := (&Options{NDim: 5}).Validate(); err == nil {
		t.Error("NDim 5 accepted")
	}
	if err := (&Options{Distance: -1}).Validate(); err == nil {
		t.Error("negative distance accepted")
	}
	if err := (&Options{Kernel: KernelMode(5)}).Validate(); err == nil {
		t.Error("out-of-range kernel mode accepted")
	}
	if err := (&Options{KernelBlock: -2}).Validate(); err == nil {
		t.Error("negative kernel block accepted")
	}
}

// TestKernelModesIdentical pins the façade contract of the kernel knob:
// every mode produces bit-identical parameter images.
func TestKernelModesIdentical(t *testing.T) {
	v := phantom(t)
	base := smallOpts(2)
	base.KernelWorkers = 4
	want, err := Analyze(v, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []KernelMode{KernelBlocked, KernelLegacy} {
		opts := smallOpts(2)
		opts.KernelWorkers = 4
		opts.Kernel = k
		opts.KernelBlock = 2
		got, err := Analyze(v, opts)
		if err != nil {
			t.Fatalf("kernel %v: %v", k, err)
		}
		for f, g := range want.Grids {
			other := got.Grids[f]
			if other == nil {
				t.Fatalf("kernel %v: feature %v missing", k, f)
			}
			for i := range g.Data {
				if g.Data[i] != other.Data[i] {
					t.Fatalf("kernel %v: feature %v diverged at %d", k, f, i)
				}
			}
		}
	}
}

func TestAnalyzeReport(t *testing.T) {
	v := phantom(t)
	// Sequential path: a single SEQ pseudo-filter covering the whole scan.
	seq, err := Analyze(v, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Report == nil {
		t.Fatal("sequential run has no report")
	}
	if err := seq.Report.Validate(); err != nil {
		t.Fatal(err)
	}
	if seq.Report.Engine != "direct" || seq.Report.Filter("SEQ") == nil {
		t.Errorf("sequential report: engine %q, filters %v", seq.Report.Engine, len(seq.Report.Filters))
	}
	// Parallel path: the pipeline's filters with their spans.
	par, err := Analyze(v, smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if par.Report == nil {
		t.Fatal("parallel run has no report")
	}
	if err := par.Report.Validate(); err != nil {
		t.Fatal(err)
	}
	if par.Report.Engine != "local" {
		t.Errorf("parallel report engine = %q", par.Report.Engine)
	}
	hmp := par.Report.Filter("HMP")
	if hmp == nil || len(hmp.Copies) != 3 {
		t.Fatalf("HMP filter report: %+v", hmp)
	}
	// The report is JSON-serializable via encoding/json directly.
	data, err := json.Marshal(par.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"HMP"`) {
		t.Error("serialized report lacks the HMP filter")
	}
	// DisableMetrics leaves Report nil on both paths.
	for _, par := range []int{1, 3} {
		opts := smallOpts(par)
		opts.DisableMetrics = true
		res, err := Analyze(v, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report != nil {
			t.Errorf("Parallelism %d: Report non-nil with DisableMetrics", par)
		}
	}
}

func TestAnalyzeDatasetReport(t *testing.T) {
	v := phantom(t)
	dir := t.TempDir()
	if err := WriteDataset(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeDataset(dir, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("dataset run has no report")
	}
	if err := res.Report.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RFR", "IIC", "HMP", "OUT"} {
		if res.Report.Filter(name) == nil {
			t.Errorf("filter %s missing from report", name)
		}
	}
}

func TestAnalyzeContextCancel(t *testing.T) {
	v := phantom(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, v, smallOpts(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeContext err = %v, want context.Canceled", err)
	}
	dir := t.TempDir()
	if err := WriteDataset(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeDatasetContext(ctx, dir, smallOpts(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeDatasetContext err = %v, want context.Canceled", err)
	}
}

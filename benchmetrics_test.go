package haralick4d

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"haralick4d/internal/core"
	"haralick4d/internal/features"
	"haralick4d/internal/filter"
	"haralick4d/internal/pipeline"
	"haralick4d/internal/synthetic"
)

// benchAnalyzeMetrics runs the parallel façade path with the observability
// layer on or off, over a volume big enough that per-buffer metric costs
// would show up if they were significant.
func benchAnalyzeMetrics(disable bool) func(*testing.B) {
	return func(b *testing.B) {
		v := GeneratePhantom(PhantomConfig{Dims: [4]int{32, 32, 8, 8}, Seed: 9})
		opts := &Options{ROI: [4]int{5, 5, 2, 2}, GrayLevels: 16, Parallelism: 4, DisableMetrics: disable}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(v, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAnalyzeMetricsOn(b *testing.B)  { benchAnalyzeMetrics(false)(b) }
func BenchmarkAnalyzeMetricsOff(b *testing.B) { benchAnalyzeMetrics(true)(b) }

// TestWriteMetricsBenchJSON measures the observability layer's overhead
// (metrics on vs off on the same workload) and the report's time-accounting
// quality, and writes both to the path in HARALICK4D_BENCH_METRICS_OUT; used
// to produce the committed BENCH_metrics.json:
//
//	HARALICK4D_BENCH_METRICS_OUT=$PWD/BENCH_metrics.json go test -run TestWriteMetricsBenchJSON
func TestWriteMetricsBenchJSON(t *testing.T) {
	out := os.Getenv("HARALICK4D_BENCH_METRICS_OUT")
	if out == "" {
		t.Skip("set HARALICK4D_BENCH_METRICS_OUT to regenerate BENCH_metrics.json")
	}
	// Min of three benchmark runs per mode: pipeline wall times carry
	// scheduler noise that a single averaged run does not suppress.
	minNs := func(fn func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(fn)
			ns := float64(r.NsPerOp())
			if i == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	onNs := minNs(BenchmarkAnalyzeMetricsOn)
	offNs := minNs(BenchmarkAnalyzeMetricsOff)
	overheadPct := 100 * (onNs - offNs) / offNs
	t.Logf("metrics on %12.0f ns/op, off %12.0f ns/op, overhead %+.2f%%", onNs, offNs, overheadPct)

	// Accounting quality from one metered run: per copy, busy + blocked +
	// stalled should cover the elapsed wall time. A saturated pipeline —
	// many chunks, shallow queues — keeps every copy alive for the whole
	// run, so the per-copy sums are directly comparable to the elapsed time.
	grid := synthetic.GenerateGrid(synthetic.Config{Dims: [4]int{32, 32, 8, 8}, Seed: 9}, 16)
	pcfg := &pipeline.Config{
		Analysis: core.Config{
			ROI:            [4]int{5, 5, 2, 2},
			GrayLevels:     16,
			NDim:           4,
			Distance:       1,
			Features:       features.PaperSet(),
			Representation: core.SparseMatrix,
		},
		ChunkShape: [4]int{12, 12, 4, 4},
		Impl:       pipeline.HMPImpl,
		Policy:     filter.DemandDriven,
		Output:     pipeline.OutputCollect,
	}
	g, _, _, err := pipeline.BuildMem(grid, pcfg, &pipeline.Layout{HMPNodes: make([]int, 4)})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := pipeline.Run(g, pipeline.EngineLocal, &pipeline.RunOptions{QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := rs.Report
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	var copies int
	var accounted int64
	for _, f := range rep.Filters {
		for _, c := range f.Copies {
			copies++
			accounted += c.BusyNS + c.BlockedRecvNS + c.StalledSendNS
		}
	}
	wall := rep.ElapsedNS * int64(copies)
	ratio := float64(accounted) / float64(wall)
	t.Logf("accounting: %d ns over %d copies = %.1f%% of wall x copies", accounted, copies, 100*ratio)

	doc := struct {
		GeneratedBy string         `json:"generated_by"`
		Host        map[string]any `json:"host"`
		Workload    string         `json:"workload"`
		MetricsOn   float64        `json:"metrics_on_ns_per_op"`
		MetricsOff  float64        `json:"metrics_off_ns_per_op"`
		OverheadPct float64        `json:"overhead_pct"`
		Accounting  map[string]any `json:"accounting"`
		Notes       []string       `json:"notes"`
	}{
		GeneratedBy: "go test -run TestWriteMetricsBenchJSON (HARALICK4D_BENCH_METRICS_OUT)",
		Host: map[string]any{
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload:    "Analyze 32x32x8x8 phantom, ROI 5x5x2x2, G=16, 40 directions, Parallelism 4, local engine",
		MetricsOn:   onNs,
		MetricsOff:  offNs,
		OverheadPct: overheadPct,
		Accounting: map[string]any{
			"accounted_ns":            accounted,
			"wall_x_copies_ns":        wall,
			"accounted_over_wall_pct": 100 * ratio,
			"copies":                  copies,
		},
		Notes: []string{
			"overhead compares min-of-3 benchmark runs of the same pipeline with the observability layer on (default) and off (Options.DisableMetrics)",
			"per-buffer metric cost is a handful of atomic operations; span timers are two time.Now() calls per recorded section",
			"accounting sums busy + blocked-recv + stalled-send across every filter copy of a saturated pipeline (explicit 12x12x4x4 chunks, queue depth 2) where every copy lives for the whole run; copies that finish early in unsaturated runs stop accruing and lower the ratio",
		},
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

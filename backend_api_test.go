package haralick4d

import (
	"strings"
	"testing"

	"haralick4d/internal/dataset"
)

// TestAnalyzeDatasetMemBackend runs the façade over a registered mem://
// dataset and checks the feature maps against the local-directory path and
// the backend section of the run report.
func TestAnalyzeDatasetMemBackend(t *testing.T) {
	v := phantom(t)
	dir := t.TempDir()
	if err := WriteDataset(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	ref, err := AnalyzeDataset(dir, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}

	mb, _, err := dataset.WriteMemDataset(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	dataset.RegisterMem("api-mem-test", mb)
	defer dataset.UnregisterMem("api-mem-test")

	res, err := AnalyzeDataset("mem://api-mem-test", smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range PaperFeatures() {
		a, b := ref.Grids[f], res.Grids[f]
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("%v voxel %d differs between disk and mem backends", f, i)
			}
		}
	}
	if res.Report == nil {
		t.Fatal("no report")
	}
	if len(res.Report.Backends) != 1 {
		t.Fatalf("report has %d backend entries, want 1", len(res.Report.Backends))
	}
	be := res.Report.Backends[0]
	if be.Scheme != "mem" || be.URL != "mem://api-mem-test" {
		t.Errorf("backend identity = %q %q", be.Scheme, be.URL)
	}
	if be.Reads == 0 || be.ReadBytes == 0 {
		t.Errorf("backend counters empty: %+v", be)
	}
	// The report's text rendering surfaces the backend table.
	if s := res.Report.String(); !strings.Contains(s, "backends:") {
		t.Error("report text omits the backends section")
	}
}

// TestAnalyzeDatasetCacheCounters enables the block cache on a local run
// and checks the hit/miss counters reach the report.
func TestAnalyzeDatasetCacheCounters(t *testing.T) {
	v := phantom(t)
	dir := t.TempDir()
	if err := WriteDataset(dir, v, 2); err != nil {
		t.Fatal(err)
	}
	opts := smallOpts(2)
	opts.CacheBlocks = 64
	res, err := AnalyzeDataset(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Backends) != 1 {
		t.Fatalf("report has %d backend entries, want 1", len(res.Report.Backends))
	}
	be := res.Report.Backends[0]
	if be.Scheme != "file" {
		t.Errorf("backend scheme = %q, want file", be.Scheme)
	}
	if be.CacheHits+be.CacheMisses == 0 {
		t.Errorf("block cache saw no traffic: %+v", be)
	}
	if be.CacheFetchBytes == 0 {
		t.Errorf("block cache fetched no bytes: %+v", be)
	}
}

func TestOptionsBackendValidation(t *testing.T) {
	o := smallOpts(1)
	o.CacheBlocks = -1
	if err := o.Validate(); err == nil {
		t.Error("negative CacheBlocks accepted")
	}
	o = smallOpts(1)
	o.CacheBlockSize = -1
	if err := o.Validate(); err == nil {
		t.Error("negative CacheBlockSize accepted")
	}
	o = smallOpts(1)
	o.CacheBlockSize = 4096 // without CacheBlocks
	if err := o.Validate(); err == nil {
		t.Error("CacheBlockSize without CacheBlocks accepted")
	}
	if _, err := AnalyzeDataset(t.TempDir(), o); err == nil {
		t.Error("AnalyzeDataset accepted invalid cache options")
	}
}

func TestAnalyzeDatasetBadURL(t *testing.T) {
	for _, url := range []string{"", "ftp://host/x", "mem://", "mem://no-such-backend", "http://"} {
		if _, err := AnalyzeDataset(url, smallOpts(1)); err == nil {
			t.Errorf("URL %q accepted", url)
		}
	}
}
